"""Replicated interval mappings (the paper's future work, Section 6).

"A stage could be mapped onto several processors, each in charge of
different data sets, in order to improve the period, as was investigated
in [4]" -- this module implements that extension for fully homogeneous
platforms, in the round-robin discipline of [4] (Benoit & Robert,
Algorithmica 2009):

* an interval may be *replicated* on ``k`` processors; consecutive data
  sets are dispatched to the replicas in round-robin order, so each replica
  handles one data set out of ``k`` and the interval's contribution to the
  period becomes ``cycle_time / k`` (the slowest replica paces the round
  with heterogeneous modes: ``max_r cycle_r / k``);
* the latency of a single data set is unchanged by replication (each data
  set is processed by exactly one replica): the per-interval term uses the
  slowest replica as a worst-case bound;
* the energy grows with every enrolled replica -- replication is a
  *performance-for-energy* trade, the exact opposite corner of the design
  space from mode downgrading.

The module provides validation, analytic evaluation, a replication-aware
single-application period DP (which strictly generalizes
:func:`repro.algorithms.interval_period.single_app_period_table`), and
round-robin simulation support so the operational model can confirm the
``cycle / k`` law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.application import Application
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.evaluation import CriteriaValues
from ..core.exceptions import InvalidMappingError
from ..core.platform import Platform
from ..core.types import CommunicationModel, Interval


@dataclass(frozen=True)
class ReplicatedAssignment:
    """One interval of one application on a *set* of replica processors."""

    app: int
    interval: Interval
    procs: Tuple[int, ...]
    speeds: Tuple[float, ...]

    def __post_init__(self) -> None:
        lo, hi = self.interval
        if lo > hi or lo < 0:
            raise InvalidMappingError(f"invalid interval {self.interval!r}")
        if len(self.procs) == 0:
            raise InvalidMappingError("a replica set cannot be empty")
        if len(set(self.procs)) != len(self.procs):
            raise InvalidMappingError(f"duplicate replicas in {self.procs!r}")
        if len(self.speeds) != len(self.procs):
            raise InvalidMappingError("one speed per replica is required")
        if any(s <= 0 for s in self.speeds):
            raise InvalidMappingError("replica speeds must be positive")

    @property
    def n_replicas(self) -> int:
        """The replication degree ``k``."""
        return len(self.procs)


@dataclass(frozen=True)
class ReplicatedMapping:
    """An interval mapping whose intervals may be replicated."""

    assignments: Tuple[ReplicatedAssignment, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.assignments, key=lambda x: (x.app, x.interval[0]))
        )
        object.__setattr__(self, "assignments", ordered)

    def for_app(self, app: int) -> Tuple[ReplicatedAssignment, ...]:
        """The (ordered) replicated intervals of one application."""
        return tuple(a for a in self.assignments if a.app == app)

    @property
    def applications(self) -> Tuple[int, ...]:
        """Application indices covered by the mapping."""
        return tuple(sorted({a.app for a in self.assignments}))

    @property
    def enrolled_processors(self) -> Tuple[int, ...]:
        """All processors used by any replica."""
        return tuple(
            sorted({u for a in self.assignments for u in a.procs})
        )

    def validate(
        self, apps: Sequence[Application], platform: Platform
    ) -> None:
        """Structural rules: per-application intervals partition the stages
        in order; no processor is used twice; speeds are valid modes."""
        if not self.assignments:
            raise InvalidMappingError("empty replicated mapping")
        seen: set = set()
        for x in self.assignments:
            if not 0 <= x.app < len(apps):
                raise InvalidMappingError(f"unknown application {x.app}")
            for u, s in zip(x.procs, x.speeds):
                if not 0 <= u < platform.n_processors:
                    raise InvalidMappingError(f"unknown processor {u}")
                if u in seen:
                    raise InvalidMappingError(
                        f"processor {u} used by two replica sets"
                    )
                seen.add(u)
                if not platform.processor(u).has_speed(s):
                    raise InvalidMappingError(
                        f"speed {s} is not a mode of processor {u}"
                    )
        for a, app in enumerate(apps):
            expected = 0
            for x in self.for_app(a):
                lo, hi = x.interval
                if lo != expected:
                    raise InvalidMappingError(
                        f"application {a}: intervals are not consecutive"
                    )
                if hi >= app.n_stages:
                    raise InvalidMappingError(
                        f"application {a}: interval {x.interval} out of range"
                    )
                expected = hi + 1
            if expected != app.n_stages:
                raise InvalidMappingError(
                    f"application {a}: stages not fully covered"
                )


def _interval_terms(
    app: Application,
    interval: Interval,
    speed: float,
    bandwidth: float,
) -> Tuple[float, float, float]:
    lo, hi = interval
    return (
        app.interval_input_size(interval) / bandwidth,
        app.work_sum(lo, hi) / speed,
        app.interval_output_size(interval) / bandwidth,
    )


def evaluate_replicated(
    apps: Sequence[Application],
    platform: Platform,
    mapping: ReplicatedMapping,
    *,
    model: CommunicationModel = CommunicationModel.OVERLAP,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> CriteriaValues:
    """Analytic criteria of a replicated mapping (homogeneous links).

    Period per interval: ``max_r cycle_r / k`` (round-robin law of [4]).
    Latency per interval: the slowest replica's compute plus the outgoing
    communication (worst-case single data set).  Energy: every replica
    counts.
    """
    bandwidth = platform.default_bandwidth
    periods: Dict[int, float] = {}
    latencies: Dict[int, float] = {}
    for a in mapping.applications:
        app = apps[a]
        worst_cycle = 0.0
        latency = app.input_data_size / bandwidth
        for x in mapping.for_app(a):
            k = x.n_replicas
            slowest = min(x.speeds)
            cycles = [
                model.combine(*_interval_terms(app, x.interval, s, bandwidth))
                for s in x.speeds
            ]
            worst_cycle = max(worst_cycle, max(cycles) / k)
            t_in, t_comp, t_out = _interval_terms(
                app, x.interval, slowest, bandwidth
            )
            latency += t_comp + t_out
        periods[a] = worst_cycle
        latencies[a] = latency
    energy = 0.0
    for x in mapping.assignments:
        for u, s in zip(x.procs, x.speeds):
            energy += energy_model.processor_energy(platform.processor(u), s)
    period = max(apps[a].weight * t for a, t in periods.items())
    latency = max(apps[a].weight * l for a, l in latencies.items())
    return CriteriaValues(
        periods=periods,
        latencies=latencies,
        period=period,
        latency=latency,
        energy=energy,
    )


@dataclass(frozen=True)
class ReplicatedPeriodTable:
    """``T_a(q)`` allowing replication, with reconstruction."""

    app: Application
    speed: float
    bandwidth: float
    model: CommunicationModel
    periods: Tuple[float, ...]
    #: ``parents[q][i] = (j, k)``: last interval covers stages ``j..i-1``
    #: with ``k`` replicas; ``(-1, 0)`` means "use fewer processors".
    parents: Tuple[Tuple[Tuple[int, int], ...], ...]

    @property
    def max_procs(self) -> int:
        """The largest processor count tabulated."""
        return len(self.periods) - 1

    def period(self, q: int) -> float:
        """Optimal replicated period with at most ``q`` processors."""
        return self.periods[min(q, self.max_procs)]

    def reconstruct(self, q: int) -> List[Tuple[Interval, int]]:
        """Optimal ``(interval, n_replicas)`` list for at most ``q``
        processors."""
        q = min(q, self.max_procs)
        n = self.app.n_stages
        if q < 1 or not math.isfinite(self.periods[q]):
            raise InvalidMappingError(
                f"no feasible replicated partition with {q} processors"
            )
        out: List[Tuple[Interval, int]] = []
        i = n
        while i > 0:
            j, k = self.parents[q][i]
            while j < 0:
                q -= 1
                j, k = self.parents[q][i]
            out.append(((j, i - 1), k))
            i = j
            q -= k
        out.reverse()
        return out


def replicated_period_table(
    app: Application,
    max_procs: int,
    speed: float,
    bandwidth: float,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> ReplicatedPeriodTable:
    """Single-application min-period DP with replication on identical
    processors::

        T(i, q) = min(T(i, q-1),
                      min_{j < i, 1 <= k <= q} max(T(j, q-k),
                                                   cycle(j..i-1) / k))

    ``O(n^2 q^2)``.  With ``k = 1`` only, this reduces exactly to the
    non-replicated DP (tested as an invariant).
    """
    from ..algorithms.interval_period import interval_cycle

    n = app.n_stages
    q_max = max(1, min(max_procs, 4 * n))  # > n can now help, but cap sanely
    inf = math.inf

    cycle = [[0.0] * (n + 1) for _ in range(n)]
    for j in range(n):
        for i in range(j + 1, n + 1):
            cycle[j][i] = interval_cycle(
                app, (j, i - 1), speed, bandwidth, model
            )

    # T[q][i]
    tables: List[List[float]] = [[0.0] + [inf] * n]
    parents: List[List[Tuple[int, int]]] = [[(-1, 0)] * (n + 1)]
    for q in range(1, q_max + 1):
        cur = list(tables[q - 1])
        par = [(-1, 0)] * (n + 1)
        for i in range(1, n + 1):
            best = tables[q - 1][i]
            best_choice = (-1, 0)
            for j in range(i):
                for k in range(1, q + 1):
                    prior = tables[q - k][j]
                    if not math.isfinite(prior):
                        continue
                    value = max(prior, cycle[j][i] / k)
                    if value < best:
                        best = value
                        best_choice = (j, k)
            cur[i] = best
            par[i] = best_choice
        tables.append(cur)
        parents.append(par)
    return ReplicatedPeriodTable(
        app=app,
        speed=speed,
        bandwidth=bandwidth,
        model=model,
        periods=tuple(t[n] for t in tables),
        parents=tuple(tuple(p) for p in parents),
    )


def simulate_replicated(
    apps: Sequence[Application],
    platform: Platform,
    mapping: ReplicatedMapping,
    n_datasets: int,
    *,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> Dict[int, List[float]]:
    """Round-robin simulation of a replicated mapping.

    Data set ``d`` of an application is processed, at every replicated
    interval, by replica ``d mod k``; communications follow the data set to
    its replica.  Returns per-application completion times; the steady-state
    gap must match :func:`evaluate_replicated`'s period (tested).
    """
    if n_datasets <= 0:
        raise ValueError("n_datasets must be positive")
    bandwidth = platform.default_bandwidth
    completions: Dict[int, List[float]] = {}
    for a in mapping.applications:
        app = apps[a]
        parts = mapping.for_app(a)
        free: Dict[Tuple, float] = {}
        done: List[float] = []
        for d in range(n_datasets):
            t = 0.0
            prev_proc: Optional[int] = None
            for idx, x in enumerate(parts):
                replica = d % x.n_replicas
                u = x.procs[replica]
                s = x.speeds[replica]
                t_in, t_comp, t_out_ignored = _interval_terms(
                    app, x.interval, s, bandwidth
                )
                # Incoming communication (from Pin or the previous replica).
                comm_res: Tuple
                if model is CommunicationModel.OVERLAP:
                    comm_res = ("link", prev_proc, u)
                    start = max(t, free.get(comm_res, 0.0))
                    finish = start + t_in
                    free[comm_res] = finish
                else:
                    res_in = [("cpu", u)]
                    if prev_proc is not None:
                        res_in.append(("cpu", prev_proc))
                    start = max([t] + [free.get(r, 0.0) for r in res_in])
                    finish = start + t_in
                    for r in res_in:
                        free[r] = finish
                t = finish
                # Computation on the replica.
                start = max(t, free.get(("cpu", u), 0.0))
                finish = start + t_comp
                free[("cpu", u)] = finish
                t = finish
                prev_proc = u
            # Final output communication.
            out_size = app.stages[-1].output_size
            t_out = out_size / bandwidth
            if model is CommunicationModel.OVERLAP:
                res = ("link", prev_proc, "out")
                start = max(t, free.get(res, 0.0))
                finish = start + t_out
                free[res] = finish
            else:
                res = ("cpu", prev_proc)
                start = max(t, free.get(res, 0.0))
                finish = start + t_out
                free[res] = finish
            done.append(finish)
        completions[a] = done
    return completions
