"""The motivating example of Section 2 (Figure 1), reconstructed exactly.

Two applications, three processors with two modes each, all bandwidths 1,
energy exponent ``alpha = 2`` with zero static energy:

* ``App1``: input size 1, three stages with works ``(3, 2, 1)``; the first
  stage emits data of size 3; the final output has size 0.
* ``App2``: input size 0, four stages with works ``(2, 6, 4, 2)``; the data
  between stages 2 and 3 has size 1 (it is communicated in the
  period-optimal mapping) and the final output has size 1.
* Processors: ``P1`` modes ``(3, 6)``, ``P2`` modes ``(6, 8)``, ``P3`` modes
  ``(1, 6)``.

Two inter-stage data sizes are never exercised by any mapping discussed in
the paper (App1 between stages 2-3, App2 between stages 1-2 and 3-4).  The
text pins App2's stage-2 output to 1 via Equation (1); the remaining free
sizes are chosen small enough (documented below) not to alter any of the
reported numbers:

* App1 ``delta_2 = 2`` (unused by all four worked mappings);
* App2 ``delta_1 = 3`` (unused), ``delta_3 = 1`` (must be ``<= 2`` for the
  energy-46 compromise mapping to keep a period of 2; the natural choice 1
  matches the neighbouring sizes).

Expected numbers reproduced by ``benchmarks/bench_fig1_example.py``:

========================  =======  ========  =======
mapping                    period   latency   energy
========================  =======  ========  =======
optimal period (Eq. 1)       1.0         --      136
optimal latency (Eq. 2)       --       2.75       --
minimal energy               14.0        --       10
compromise (period <= 2)      2.0        --       46
========================  =======  ========  =======
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.application import Application
from ..core.energy import EnergyModel
from ..core.mapping import Assignment, Mapping
from ..core.platform import Platform
from ..core.problem import ProblemInstance
from ..core.processor import Processor
from ..core.types import CommunicationModel, MappingRule

#: The numbers the paper reports for the four worked mappings of Section 2.
FIGURE1_EXPECTED: Dict[str, float] = {
    "optimal_period": 1.0,
    "optimal_period_energy": 136.0,  # 6^2 + 8^2 + 6^2
    "optimal_latency": 2.75,
    "min_energy": 10.0,  # 3^2 + 1^2
    "min_energy_period": 14.0,
    "compromise_period": 2.0,
    "compromise_energy": 46.0,  # 3^2 + 6^2 + 1^2
}


def figure1_applications() -> Tuple[Application, Application]:
    """The two applications of Figure 1 (see the module docstring for the
    two documented free data sizes)."""
    app1 = Application.from_lists(
        works=[3.0, 2.0, 1.0],
        output_sizes=[3.0, 2.0, 0.0],
        input_data_size=1.0,
        name="App1",
    )
    app2 = Application.from_lists(
        works=[2.0, 6.0, 4.0, 2.0],
        output_sizes=[3.0, 1.0, 1.0, 1.0],
        input_data_size=0.0,
        name="App2",
    )
    return app1, app2


def figure1_platform() -> Platform:
    """The three bi-modal processors of Figure 1, all links of bandwidth 1."""
    return Platform(
        processors=(
            Processor(speeds=(3.0, 6.0), name="P1"),
            Processor(speeds=(6.0, 8.0), name="P2"),
            Processor(speeds=(1.0, 6.0), name="P3"),
        ),
        default_bandwidth=1.0,
        name="figure-1",
    )


def figure1_problem(
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> ProblemInstance:
    """The full problem instance (interval rule, alpha = 2)."""
    return ProblemInstance(
        apps=figure1_applications(),
        platform=figure1_platform(),
        rule=MappingRule.INTERVAL,
        model=model,
        energy_model=EnergyModel(alpha=2.0),
    )


# Processor indices, 0-based: P1 = 0, P2 = 1, P3 = 2.
_P1, _P2, _P3 = 0, 1, 2


def mapping_optimal_period() -> Mapping:
    """The period-1 mapping of Equation (1): App1 entirely on P3 (mode 6),
    App2 stages 1-2 on P2 (mode 8) and stages 3-4 on P1 (mode 6)."""
    return Mapping.from_assignments(
        [
            Assignment(app=0, interval=(0, 2), proc=_P3, speed=6.0),
            Assignment(app=1, interval=(0, 1), proc=_P2, speed=8.0),
            Assignment(app=1, interval=(2, 3), proc=_P1, speed=6.0),
        ]
    )


def mapping_optimal_latency() -> Mapping:
    """The latency-2.75 mapping of Equation (2): App1 whole on P1 (mode 6),
    App2 whole on P2 (mode 8)."""
    return Mapping.from_assignments(
        [
            Assignment(app=0, interval=(0, 2), proc=_P1, speed=6.0),
            Assignment(app=1, interval=(0, 3), proc=_P2, speed=8.0),
        ]
    )


def mapping_min_energy() -> Mapping:
    """The energy-10 mapping: App1 whole on P1 in its lowest mode (3),
    App2 whole on P3 in its lowest mode (1); the period degrades to 14."""
    return Mapping.from_assignments(
        [
            Assignment(app=0, interval=(0, 2), proc=_P1, speed=3.0),
            Assignment(app=1, interval=(0, 3), proc=_P3, speed=1.0),
        ]
    )


def mapping_compromise_energy_46() -> Mapping:
    """The period-2 / energy-46 compromise: every processor in its first
    mode; App1 on P1 (3), App2 stages 1-3 on P2 (6) and stage 4 on P3 (1)."""
    return Mapping.from_assignments(
        [
            Assignment(app=0, interval=(0, 2), proc=_P1, speed=3.0),
            Assignment(app=1, interval=(0, 2), proc=_P2, speed=6.0),
            Assignment(app=1, interval=(3, 3), proc=_P3, speed=1.0),
        ]
    )
