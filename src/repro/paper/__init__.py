"""Concrete artefacts from the paper: the Figure 1 instance and the worked
mappings of the motivating example (Section 2)."""

from .example import (
    FIGURE1_EXPECTED,
    figure1_applications,
    figure1_platform,
    figure1_problem,
    mapping_compromise_energy_46,
    mapping_min_energy,
    mapping_optimal_latency,
    mapping_optimal_period,
)

__all__ = [
    "FIGURE1_EXPECTED",
    "figure1_applications",
    "figure1_platform",
    "figure1_problem",
    "mapping_compromise_energy_46",
    "mapping_min_energy",
    "mapping_optimal_latency",
    "mapping_optimal_period",
]
