"""Command-line interface: ``repro-pipelines``.

Subcommands:

* ``demo-example`` -- replay the paper's Section 2 motivating example,
  printing the four worked mappings and their criteria;
* ``tables`` -- print the complexity registry (Tables 1 and 2);
* ``solve`` -- solve a random instance in a chosen cell and report the
  mapping (a quick way to exercise the solvers);
* ``simulate`` -- run the discrete-event simulator on the Section 2
  example and compare measured vs analytic period/latency;
* ``solve-batch`` -- generate a fleet of random instances across registry
  cells and solve them through :mod:`repro.service`, optionally over a
  process pool, reporting per-instance timing;
* ``strategies`` -- the solver-strategy registry
  (:mod:`repro.strategies`): ``list`` enumerates every registered
  strategy with its declared capabilities;
* ``campaign`` -- declarative experiment campaigns
  (:mod:`repro.experiments`): ``run`` executes a YAML/JSON spec's missing
  cells through the resumable results cache, ``status`` reports cache
  coverage, ``report`` renders aggregate, solver-comparison and
  telemetry tables;
* ``serve`` -- run the solve-service daemon (:mod:`repro.server`): an
  HTTP API over a priority job queue with content-addressed dedup
  against the results cache;
* ``route`` -- run the shard router (:mod:`repro.server.router`): one
  ``/v1/*`` front door consistent-hash routing submissions over a
  fleet of daemons (``--shard URL`` to front running ones, ``--spawn
  N`` to launch a local fleet), with health mark-down/up and bounded
  retry-to-next-replica;
* ``submit`` / ``jobs`` / ``job-result`` -- client verbs
  (:class:`repro.client.SolveClient`) targeting a running daemon or
  router (they speak the same API).

``solve-batch``, ``campaign run`` and ``submit`` accept ``--strategy``
(a registered name or a composite spec like
``portfolio(greedy,annealing)``) plus the budget flags ``--time-limit``
/ ``--max-evals`` / ``--solver-seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis.tables import render_table
from .core.types import (
    CommunicationModel,
    Criterion,
    MappingRule,
    PlatformClass,
)


def _engine_choices() -> List[str]:
    """Registered neighborhood engines, for ``--engine`` flags
    (imported lazily: parser construction must stay cheap enough for
    ``--help``)."""
    from .algorithms.heuristics.local_search import engine_names

    return list(engine_names())


def _cmd_demo_example(args: argparse.Namespace) -> int:
    from .core.evaluation import evaluate
    from .paper import (
        FIGURE1_EXPECTED,
        figure1_applications,
        figure1_platform,
        mapping_compromise_energy_46,
        mapping_min_energy,
        mapping_optimal_latency,
        mapping_optimal_period,
    )

    apps = figure1_applications()
    platform = figure1_platform()
    rows = []
    for name, mapping in (
        ("optimal period (Eq. 1)", mapping_optimal_period()),
        ("optimal latency (Eq. 2)", mapping_optimal_latency()),
        ("minimal energy", mapping_min_energy()),
        ("compromise (T <= 2)", mapping_compromise_energy_46()),
    ):
        v = evaluate(apps, platform, mapping)
        rows.append((name, v.period, v.latency, v.energy))
    print("Section 2 motivating example (Figure 1):")
    print(render_table(["mapping", "period", "latency", "energy"], rows))
    print(
        "\npaper-reported numbers: period 1 (energy 136), latency 2.75, "
        f"min energy {FIGURE1_EXPECTED['min_energy']:.0f} "
        f"(period {FIGURE1_EXPECTED['min_energy_period']:.0f}), "
        f"compromise period {FIGURE1_EXPECTED['compromise_period']:.0f} "
        f"at energy {FIGURE1_EXPECTED['compromise_energy']:.0f}"
    )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .algorithms.registry import TABLE1, TABLE2

    for label, table in (("Table 1", TABLE1), ("Table 2", TABLE2)):
        rows = [
            (
                "/".join(c.value for c in e.criteria),
                e.rule.value,
                e.cell.value,
                e.complexity.value,
                e.theorem,
            )
            for e in table
        ]
        print(f"{label} (complexity of every cell):")
        print(
            render_table(
                ["criteria", "rule", "platform", "complexity", "theorem"],
                rows,
            )
        )
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .algorithms import minimize_latency, minimize_period
    from .generators import small_random_problem

    problem = small_random_problem(
        args.seed,
        platform_class=PlatformClass(args.platform),
        rule=MappingRule(args.rule),
        model=CommunicationModel(args.model),
        n_apps=args.apps,
    )
    fn = minimize_period if args.criterion == "period" else minimize_latency
    solution = fn(problem, method=args.method)
    print(f"solver  : {solution.solver}")
    print(f"optimal : {solution.optimal}")
    print(f"objective ({args.criterion}): {solution.objective:.6g}")
    rows = [
        (x.app, f"[{x.interval[0]}, {x.interval[1]}]", x.proc, x.speed)
        for x in solution.mapping.assignments
    ]
    print(render_table(["app", "stages", "processor", "speed"], rows))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core.evaluation import application_latency, evaluate
    from .paper import figure1_applications, figure1_platform, mapping_optimal_period
    from .simulation import simulate

    apps = figure1_applications()
    platform = figure1_platform()
    mapping = mapping_optimal_period()
    model = CommunicationModel(args.model)
    values = evaluate(apps, platform, mapping, model=model)
    result = simulate(
        apps, platform, mapping, args.datasets, model=model
    )
    rows = []
    for a in sorted(result.completions):
        rows.append(
            (
                apps[a].name,
                values.periods[a],
                result.measured_period(a),
                application_latency(apps, platform, mapping, a),
                result.measured_latency(a),
            )
        )
    print(
        f"simulated {args.datasets} data sets per application "
        f"({model.value} model):"
    )
    print(
        render_table(
            [
                "application",
                "analytic period",
                "measured period",
                "analytic latency",
                "measured latency",
            ],
            rows,
        )
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .generators import small_random_problem
    from .io import save_problem

    problem = small_random_problem(
        args.seed,
        platform_class=PlatformClass(args.platform),
        rule=MappingRule(args.rule),
        model=CommunicationModel(args.model),
        n_apps=args.apps,
        n_modes=args.modes,
    )
    save_problem(problem, args.output)
    print(
        f"wrote {args.output}: {problem.n_apps} applications, "
        f"{problem.n_stages_total} stages, "
        f"{problem.platform.n_processors} processors "
        f"({problem.platform_class.value}, {problem.rule.value}, "
        f"{problem.model.value})"
    )
    return 0


def _cmd_solve_file(args: argparse.Namespace) -> int:
    from .algorithms.exact import exact_minimize
    from .core.objectives import Thresholds
    from .io import load_problem, mapping_to_dict

    problem = load_problem(args.instance)
    thresholds = Thresholds(
        period=args.max_period, latency=args.max_latency, energy=args.max_energy
    )
    solution = exact_minimize(
        problem, Criterion(args.criterion), thresholds
    )
    print(f"objective ({args.criterion}): {solution.objective:.6g}")
    print(
        f"period={solution.values.period:.6g} "
        f"latency={solution.values.latency:.6g} "
        f"energy={solution.values.energy:.6g}"
    )
    if args.output:
        import json
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(mapping_to_dict(solution.mapping), indent=2)
        )
        print(f"mapping written to {args.output}")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from .analysis import period_energy_front_exact
    from .io import load_problem
    from .paper import figure1_problem

    problem = (
        load_problem(args.instance) if args.instance else figure1_problem()
    )
    front = period_energy_front_exact(problem, max_points=args.points)
    print(
        render_table(["period", "energy"], [(t, e) for t, e in front])
    )
    print(f"({len(front)} non-dominated points)")
    return 0


def _cmd_front(args: argparse.Namespace) -> int:
    from .io import load_problem
    from .paper import figure1_problem

    problem = (
        load_problem(args.instance) if args.instance else figure1_problem()
    )
    if args.url:
        return _front_remote(args, problem)

    from .analysis import compute_front_anytime

    def _progress(event) -> None:
        point = (
            "infeasible"
            if event.point is None
            else f"period={event.point[0]:.6g} energy={event.point[1]:.6g}"
        )
        print(
            f"[{event.elapsed:7.3f}s] threshold {event.threshold:.6g}: "
            f"{point}"
        )

    result = compute_front_anytime(
        problem,
        max_points=args.points,
        workers=args.workers,
        warm_start=not args.no_warm,
        on_event=_progress if args.progress else None,
    )
    print(render_table(["period", "energy"], result.front))
    print(
        f"({len(result.front)} non-dominated points; "
        f"{result.n_cells} cells, {result.n_infeasible} infeasible, "
        f"{result.n_warm} warm-started, {result.wall_time:.3f}s)"
    )
    if args.output:
        import json
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(
                {
                    "front": [list(p) for p in result.front],
                    "thresholds": result.thresholds,
                    "wall_time": result.wall_time,
                    "cells": result.n_cells,
                    "infeasible": result.n_infeasible,
                    "warm_started": result.n_warm,
                },
                indent=2,
            )
        )
        print(f"front written to {args.output}")
    return 0


def _front_remote(args: argparse.Namespace, problem) -> int:
    from .client import ClientError, SolveClient

    client = SolveClient(args.url)
    try:
        view = client.submit_front(
            problem,
            strategy=args.strategy,
            points=args.points,
            priority=args.priority,
        )
        print(f"{view['id']}  {view['state']}  {view['total']} cells")
        for view in client.iter_front(view["id"], timeout=args.wait_timeout):
            if args.progress:
                print(
                    f"  {view['done']}/{view['total']} cells  "
                    f"front={len(view['front'])}  "
                    f"hypervolume={view['hypervolume']:.6g}"
                )
    except (ClientError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    front = [tuple(p) for p in view["front"]]
    print(render_table(["period", "energy"], front))
    print(
        f"({len(front)} non-dominated points; {view['total']} cells, "
        f"{view['infeasible']} infeasible, "
        f"hypervolume {view['hypervolume']:.6g})"
    )
    if args.output:
        import json
        from pathlib import Path

        Path(args.output).write_text(json.dumps(view, indent=2))
        print(f"front written to {args.output}")
    return 0


def _budget_from_args(args: argparse.Namespace):
    """A :class:`repro.strategies.SolveBudget` from the budget flags
    (``None`` when no flag was given)."""
    from .strategies import SolveBudget

    if (
        args.time_limit is None
        and args.max_evals is None
        and args.solver_seed is None
    ):
        return None
    return SolveBudget(
        time_limit=args.time_limit,
        max_evaluations=args.max_evals,
        seed=args.solver_seed,
    )


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="per-solve wall-clock budget in seconds",
    )
    parser.add_argument(
        "--max-evals",
        type=int,
        default=None,
        help="per-solve cap on candidate evaluations / search nodes",
    )
    parser.add_argument(
        "--solver-seed",
        type=int,
        default=None,
        help="RNG seed for the stochastic heuristics (reproducible runs)",
    )


def _cmd_strategies_list(args: argparse.Namespace) -> int:
    from .strategies import list_strategies

    rows = []
    for s in list_strategies():
        d = s.describe()
        rows.append(
            (
                d["name"],
                d["kind"],
                ",".join(d["objectives"]),
                "any" if d["rules"] is None else ",".join(d["rules"]),
                "any" if d["cells"] is None else ",".join(d["cells"]),
                "yes" if d["needs_thresholds"] else "no",
                d["summary"],
            )
        )
    print(
        render_table(
            [
                "strategy",
                "kind",
                "objectives",
                "rules",
                "cells",
                "thresholds",
                "summary",
            ],
            rows,
        )
    )
    print(
        f"\n{len(rows)} registered strategies; compose them with "
        "portfolio(a,b,...) and fallback(a,b,...), e.g. "
        "--strategy 'portfolio(greedy,local_search,annealing)'"
    )
    from .algorithms.heuristics.local_search import engine_info

    info = engine_info()
    numba = (
        f"numba {info['numba']}"
        if info["numba"]
        else "numba not installed; 'compiled' falls back to 'batched'"
    )
    print(
        f"neighborhood engines: {', '.join(info['engines'])} "
        f"(default: {info['default']}; {numba})"
    )
    return 0


def _cmd_solve_batch(args: argparse.Namespace) -> int:
    from .algorithms.registry import classify_platform_cell
    from .generators import small_random_problem
    from .service import solve_batch

    platform_classes = (
        list(PlatformClass)
        if args.platform == "all"
        else [PlatformClass(args.platform)]
    )
    rules = (
        list(MappingRule) if args.rule == "all" else [MappingRule(args.rule)]
    )
    combos = [(c, r) for c in platform_classes for r in rules]
    problems = []
    for i in range(args.count):
        cls, rule = combos[i % len(combos)]
        problems.append(
            small_random_problem(
                args.seed + i,
                platform_class=cls,
                rule=rule,
                model=CommunicationModel(args.model),
                n_apps=args.apps,
                n_modes=args.modes,
            )
        )
    result = solve_batch(
        problems,
        objective=args.criterion,
        method=args.method,
        workers=args.workers,
        strategy=args.strategy,
        budget=_budget_from_args(args),
        transport=args.transport,
        engine=args.engine,
    )
    rows = []
    cells = set()
    for item in result.items:
        problem = problems[item.index]
        cell = classify_platform_cell(problem)
        cells.add(cell)
        rows.append(
            (
                item.index,
                cell.value,
                problem.rule.value,
                item.solution.solver if item.solution else "-",
                item.status,
                f"{item.objective:.6g}" if item.status == "ok" else "-",
                f"{item.wall_time * 1000:.2f}",
            )
        )
    if not args.quiet:
        print(
            render_table(
                [
                    "#",
                    "cell",
                    "rule",
                    "solver",
                    "status",
                    args.criterion,
                    "time (ms)",
                ],
                rows,
            )
        )
    print(result.summary())
    print(f"registry cells covered: {len(cells)}")
    if args.strategy:
        with_telemetry = [x for x in result.items if x.telemetry is not None]
        evaluations = sum(x.telemetry.evaluations for x in with_telemetry)
        n_exhausted = sum(
            1 for x in with_telemetry if x.telemetry.budget_exhausted
        )
        print(
            f"strategy={args.strategy} evaluations={evaluations} "
            f"budget-exhausted={n_exhausted}/{len(result.items)}"
        )
    return 0 if result.n_failed == 0 else 1


def _campaign_dir(args: argparse.Namespace, spec) -> str:
    """The campaign's cache directory (``--dir`` or ``campaigns/<name>``)."""
    from pathlib import Path

    return args.dir if args.dir else str(Path("campaigns") / spec.name)


def _load_campaign_spec(args: argparse.Namespace):
    """Load and validate the spec file, exiting with code 2 on errors."""
    from .experiments import CampaignSpecError, load_spec

    try:
        return load_spec(args.spec)
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _apply_solver_overrides(args: argparse.Namespace, spec):
    """Apply ``--strategy`` / budget flags to every solver entry of the
    spec.  Overrides change the solver configurations, hence the cache
    keys: overridden runs populate their own cells."""
    import dataclasses

    from .strategies import SolveBudget, StrategyError, parse_strategy

    budget = _budget_from_args(args)
    if args.strategy is None and budget is None:
        return spec
    if args.strategy is not None:
        try:
            parse_strategy(args.strategy)
        except StrategyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc
    solvers = []
    for solver in spec.solvers:
        changes = {}
        if args.strategy is not None:
            changes["strategy"] = args.strategy
        if budget is not None:
            base = solver.budget.to_dict() if solver.budget else {}
            base.update(budget.to_dict())
            changes["budget"] = SolveBudget.from_dict(base)
        # overrides never touch objective/max_period, so the spec's
        # energy-requires-max_period validation still holds
        solvers.append(dataclasses.replace(solver, **changes))
    print(
        "note: --strategy/budget overrides change the solver "
        "configurations and therefore the cache keys",
        file=sys.stderr,
    )
    return dataclasses.replace(spec, solvers=tuple(solvers))


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .experiments import run_campaign

    spec = _apply_solver_overrides(args, _load_campaign_spec(args))
    directory = _campaign_dir(args, spec)
    result = run_campaign(
        spec, directory, workers=args.workers, force=args.force
    )
    if not args.quiet:
        rows = [
            (
                r.scenario.label,
                r.solver.name,
                "cache" if r.cached else (r.algorithm or "-"),
                r.status,
                f"{r.objective:.6g}" if r.ok else "-",
                f"{r.wall_time * 1000:.2f}",
            )
            for r in result.records
        ]
        print(
            render_table(
                ["scenario", "solver", "via", "status", "objective", "time (ms)"],
                rows,
            )
        )
    print(result.summary())
    print(f"results cache: {directory}")
    return 0 if result.n_failed == 0 else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .experiments import campaign_status

    spec = _load_campaign_spec(args)
    status = campaign_status(spec, _campaign_dir(args, spec))
    rows = [
        (name, done, total, total - done)
        for name, (done, total) in status.per_solver.items()
    ]
    print(render_table(["solver", "done", "total", "missing"], rows))
    print(status.summary())
    return 0 if status.complete else 1


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from .analysis.campaigns import campaign_table, solver_ratio_table
    from .experiments import load_records

    spec = _load_campaign_spec(args)
    directory = _campaign_dir(args, spec)
    records = load_records(spec, directory)
    if not records:
        print(
            "no cached results yet; run `repro-pipelines campaign run` first",
            file=sys.stderr,
        )
        return 1
    by = tuple(k.strip() for k in args.by.split(",") if k.strip())
    try:
        headers, rows = campaign_table(records, by=by)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"campaign {spec.name!r} aggregates (grouped by {', '.join(by)}):")
    print(render_table(headers, rows))
    if len(spec.solvers) > 1:
        try:
            headers, rows = solver_ratio_table(records, baseline=args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print("\npaired solver comparison (objective ratios, <1 = better):")
        print(render_table(headers, rows))
    from .analysis.campaigns import strategy_telemetry_table

    headers, rows = strategy_telemetry_table(records)
    if rows:
        print("\nper-solver telemetry (budget consumption):")
        print(render_table(headers, rows))
    if args.front > 0:
        from .analysis.campaigns import heuristic_front_quality

        print("\nheuristic period/energy front quality vs exact front:")
        quality_rows = []
        for scenario in spec.scenarios()[: args.front]:
            metrics = heuristic_front_quality(scenario.problem())
            quality_rows.append(
                (
                    scenario.label,
                    int(metrics["n_exact"]),
                    int(metrics["n_approx"]),
                    f"{metrics['coverage']:.2f}",
                    f"{metrics['mean_excess']:.3f}",
                )
            )
        print(
            render_table(
                ["scenario", "exact pts", "approx pts", "coverage", "mean excess"],
                quality_rows,
            )
        )
    n_missing = spec.n_cells - len(records)
    if n_missing:
        print(f"\nwarning: {n_missing} cells not yet computed")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import spans as obs_spans
    from .server import run_server

    if args.obs_jsonl is not None:
        obs_spans.configure(jsonl_path=args.obs_jsonl)
    run_server(
        host=args.host,
        port=args.port,
        cache=args.cache_dir,
        concurrency=args.concurrency,
        executor=args.executor,
        max_jobs_retained=args.max_jobs,
        max_queue_depth=args.max_queue_depth,
        transport=args.transport,
        shard=args.shard_name,
        engine=args.engine,
        slow_solve_threshold=args.slow_solve_threshold,
    )
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from .server import parse_shard_spec, run_router

    if not args.shard and not args.spawn:
        print(
            "error: give at least one --shard URL or --spawn N",
            file=sys.stderr,
        )
        return 2
    try:
        shard_specs = [parse_shard_spec(spec) for spec in args.shard]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spawn_args = []
    if args.max_queue_depth is not None:
        spawn_args += ["--max-queue-depth", str(args.max_queue_depth)]
    router_kwargs = {}
    if args.vnodes is not None:
        router_kwargs["vnodes"] = args.vnodes
    run_router(
        shard_specs,
        host=args.host,
        port=args.port,
        spawn=args.spawn,
        cache_dir=args.cache_dir,
        executor=args.executor,
        concurrency=args.concurrency,
        spawn_args=spawn_args,
        max_hops=args.max_hops,
        health_interval=args.health_interval,
        fail_threshold=args.fail_threshold,
        upstream_timeout=args.upstream_timeout,
        redirect_results=args.redirect_results,
        **router_kwargs,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .client import ClientError, JobFailedError, SolveClient
    from .io import load_problem

    client = SolveClient(args.url)
    budget = _budget_from_args(args)
    solver_kwargs = dict(
        objective=args.objective,
        strategy=args.strategy,
        method=None if args.strategy else args.method,
        budget=budget,
        max_period=args.max_period,
        max_latency=args.max_latency,
        max_energy=args.max_energy,
    )
    try:
        views = [
            client.submit(
                load_problem(instance),
                priority=args.priority,
                **solver_kwargs,
            )
            for instance in args.instances
        ]
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for instance, view in zip(args.instances, views):
        print(f"{view['id']}  {view['state']:9s}  {instance}")
    if not args.wait:
        return 0
    exit_code = 0
    try:
        for result in client.iter_results(
            [v["id"] for v in views], timeout=args.wait_timeout
        ):
            if result.ok:
                assert result.solution is not None
                print(
                    f"{result.job_id}  ok         "
                    f"{args.objective}={result.solution.objective:.6g} "
                    f"via={result.source}"
                )
            else:
                print(
                    f"{result.job_id}  {result.status:9s}  "
                    f"{result.error or ''}"
                )
                # Infeasible is a correct verdict, not a failure (same
                # contract as solve-batch and job-result).
                if result.status != "infeasible":
                    exit_code = 1
    except (TimeoutError, JobFailedError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return exit_code


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .client import ClientError, SolveClient

    client = SolveClient(args.url)
    try:
        if args.metrics:
            metrics = client.metrics()
            if metrics.get("role") == "router":
                # Shard-router payload: fleet-wide counters plus
                # per-shard health instead of a single queue.
                router = metrics["router"]
                up = [s for s in metrics["shard_health"] if s["up"]]
                print(
                    f"router: shards_up={len(up)}/"
                    f"{len(metrics['shard_health'])} "
                    f"ring_vnodes={metrics['ring']['vnodes']} "
                    + " ".join(
                        f"{k}={v}" for k, v in sorted(router.items())
                    )
                )
                for shard in metrics["shard_health"]:
                    state = "up" if shard["up"] else "DOWN"
                    print(
                        f"  {shard['name']:8s} {state:4s} "
                        f"{shard['url']} forwarded={shard['forwarded']}"
                    )
                jobs, solver = (
                    metrics["fleet"]["jobs"],
                    metrics["fleet"]["solver"],
                )
            else:
                queue, jobs, solver = (
                    metrics["queue"],
                    metrics["jobs"],
                    metrics["solver"],
                )
                print(
                    f"queue: depth={queue['depth']} "
                    f"running={queue['running']} "
                    f"concurrency={queue['concurrency']}"
                )
            print(
                " ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
            )
            print(
                f"solver: evaluations={solver['evaluations']} "
                f"solve_time={solver['solve_time_s']:.3f}s"
            )
            return 0
        jobs = client.jobs(state=args.state, limit=args.limit)
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        (
            j["id"],
            j["state"],
            j["status"] or "-",
            j["source"] or "-",
            (
                f"{j['objective']:.6g}"
                if j["objective"] is not None
                else "-"
            ),
            j["request"]["solver"].get(
                "strategy", j["request"]["solver"].get("method", "-")
            ),
        )
        for j in jobs
    ]
    print(
        render_table(
            ["id", "state", "status", "via", "objective", "solver"], rows
        )
    )
    print(f"{len(rows)} job(s)")
    return 0


def _cmd_job_result(args: argparse.Namespace) -> int:
    from .client import ClientError, SolveClient

    client = SolveClient(args.url)
    try:
        result = client.result(args.job_id)
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"job     : {result.job_id}")
    print(f"status  : {result.status} (via {result.source})")
    if result.solution is not None:
        solution = result.solution
        print(f"solver  : {solution.solver}")
        print(f"optimal : {solution.optimal}")
        print(f"objective: {solution.objective:.6g}")
        print(
            f"period={solution.values.period:.6g} "
            f"latency={solution.values.latency:.6g} "
            f"energy={solution.values.energy:.6g}"
        )
        if args.output:
            import json

            from pathlib import Path

            from .io import mapping_to_dict

            Path(args.output).write_text(
                json.dumps(mapping_to_dict(solution.mapping), indent=2)
            )
            print(f"mapping written to {args.output}")
    elif result.error:
        print(f"error   : {result.error}")
    if result.telemetry is not None:
        t = result.telemetry
        print(
            f"telemetry: strategy={t.strategy} evaluations={t.evaluations} "
            f"budget_exhausted={t.budget_exhausted}"
        )
    return 0 if result.status in ("ok", "infeasible") else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .client import ClientError, SolveClient
    from .obs.render import render_top

    client = SolveClient(args.url)
    while True:
        try:
            payload = client.metrics()
        except ClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_top(payload))
        if args.watch is None:
            return 0
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        print()


def _cmd_trace(args: argparse.Namespace) -> int:
    from .client import ClientError, SolveClient
    from .obs.render import format_span_tree

    client = SolveClient(args.url)
    try:
        payload = client.trace(args.trace_id)
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"trace {payload['trace_id']}: {payload['count']} span(s)")
    print(format_span_tree(payload["spans"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-pipelines`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-pipelines",
        description=(
            "Reproduction of 'Performance and energy optimization of "
            "concurrent pipelined applications' (IPDPS 2010)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "demo-example", help="replay the Section 2 motivating example"
    ).set_defaults(func=_cmd_demo_example)

    sub.add_parser(
        "tables", help="print the complexity registry (Tables 1-2)"
    ).set_defaults(func=_cmd_tables)

    solve = sub.add_parser("solve", help="solve a random instance")
    solve.add_argument("--criterion", choices=["period", "latency"], default="period")
    solve.add_argument(
        "--platform",
        choices=[c.value for c in PlatformClass],
        default=PlatformClass.FULLY_HOMOGENEOUS.value,
    )
    solve.add_argument(
        "--rule",
        choices=[r.value for r in MappingRule],
        default=MappingRule.INTERVAL.value,
    )
    solve.add_argument(
        "--model",
        choices=[m.value for m in CommunicationModel],
        default=CommunicationModel.OVERLAP.value,
    )
    solve.add_argument("--method", choices=["auto", "exact", "heuristic"], default="auto")
    solve.add_argument("--apps", type=int, default=2)
    solve.add_argument("--seed", type=int, default=0)
    solve.set_defaults(func=_cmd_solve)

    sim = sub.add_parser(
        "simulate", help="simulator vs analytic model on the example"
    )
    sim.add_argument("--datasets", type=int, default=200)
    sim.add_argument(
        "--model",
        choices=[m.value for m in CommunicationModel],
        default=CommunicationModel.OVERLAP.value,
    )
    sim.set_defaults(func=_cmd_simulate)

    gen = sub.add_parser(
        "generate", help="generate a random instance to a JSON file"
    )
    gen.add_argument("output", help="destination JSON file")
    gen.add_argument(
        "--platform",
        choices=[c.value for c in PlatformClass],
        default=PlatformClass.FULLY_HOMOGENEOUS.value,
    )
    gen.add_argument(
        "--rule",
        choices=[r.value for r in MappingRule],
        default=MappingRule.INTERVAL.value,
    )
    gen.add_argument(
        "--model",
        choices=[m.value for m in CommunicationModel],
        default=CommunicationModel.OVERLAP.value,
    )
    gen.add_argument("--apps", type=int, default=2)
    gen.add_argument("--modes", type=int, default=2)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    solve_file = sub.add_parser(
        "solve-file", help="exactly solve an instance from a JSON file"
    )
    solve_file.add_argument("instance", help="instance JSON file")
    solve_file.add_argument(
        "--criterion",
        choices=[c.value for c in Criterion],
        default=Criterion.PERIOD.value,
    )
    solve_file.add_argument("--max-period", type=float, default=None)
    solve_file.add_argument("--max-latency", type=float, default=None)
    solve_file.add_argument("--max-energy", type=float, default=None)
    solve_file.add_argument(
        "--output", default=None, help="write the mapping JSON here"
    )
    solve_file.set_defaults(func=_cmd_solve_file)

    batch = sub.add_parser(
        "solve-batch",
        help="generate and solve a fleet of random instances "
        "(optionally over a process pool)",
    )
    batch.add_argument(
        "--count", type=int, default=100, help="number of instances"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: sequential)",
    )
    batch.add_argument(
        "--criterion", choices=["period", "latency"], default="period"
    )
    batch.add_argument(
        "--method",
        choices=["registry", "auto", "exact", "heuristic"],
        default="registry",
        help="registry = polynomial solver when the cell allows, "
        "heuristic otherwise",
    )
    batch.add_argument(
        "--platform",
        choices=["all", *(c.value for c in PlatformClass)],
        default="all",
        help="platform class of the generated instances "
        "(all = cycle through every class)",
    )
    batch.add_argument(
        "--rule",
        choices=["all", *(r.value for r in MappingRule)],
        default=MappingRule.INTERVAL.value,
    )
    batch.add_argument(
        "--model",
        choices=[m.value for m in CommunicationModel],
        default=CommunicationModel.OVERLAP.value,
    )
    batch.add_argument("--apps", type=int, default=2)
    batch.add_argument("--modes", type=int, default=2)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--strategy",
        default=None,
        help="solver strategy name or composite spec, e.g. "
        "'portfolio(greedy,local_search,annealing)' "
        "(overrides --method; see `strategies list`)",
    )
    _add_budget_flags(batch)
    batch.add_argument(
        "--transport",
        choices=["auto", "shm", "pickle"],
        default="auto",
        help="pooled instance transport: shm = zero-copy shared memory, "
        "pickle = per-job serialization, auto = shm for large batches "
        "(ignored without --workers)",
    )
    batch.add_argument(
        "--engine",
        choices=_engine_choices(),
        default=None,
        help="neighborhood engine for the local-search heuristics "
        "(compiled = Numba JIT kernels, falling back to batched when "
        "numba is absent; default: the library default)",
    )
    batch.add_argument(
        "--quiet",
        action="store_true",
        help="only print the summary, not the per-instance table",
    )
    batch.set_defaults(func=_cmd_solve_batch)

    strategies = sub.add_parser(
        "strategies", help="the solver-strategy registry"
    )
    strategies_sub = strategies.add_subparsers(
        dest="strategies_command", required=True
    )
    strategies_sub.add_parser(
        "list", help="enumerate registered strategies and their capabilities"
    ).set_defaults(func=_cmd_strategies_list)

    pareto = sub.add_parser(
        "pareto", help="exact period/energy Pareto front of an instance"
    )
    pareto.add_argument(
        "--instance",
        default=None,
        help="instance JSON file (default: the paper's Figure 1)",
    )
    pareto.add_argument("--points", type=int, default=100)
    pareto.set_defaults(func=_cmd_pareto)

    front = sub.add_parser(
        "front",
        help="anytime period/energy front (local engine, or live "
        "through a daemon/router with --url)",
    )
    front.add_argument(
        "instance",
        nargs="?",
        default=None,
        help="instance JSON file (defaults to the paper's Figure 1 example)",
    )
    front.add_argument(
        "--points",
        type=int,
        default=100,
        help="max epsilon-constraint cells in the sweep",
    )
    front.add_argument(
        "--workers",
        type=int,
        default=1,
        help="local worker processes (ignored with --url)",
    )
    front.add_argument(
        "--no-warm",
        action="store_true",
        help="disable warm-starting cells from neighboring incumbents "
        "(local engine only)",
    )
    front.add_argument(
        "--url",
        default=None,
        help="submit through a running daemon/router instead of solving "
        "locally",
    )
    front.add_argument(
        "--strategy",
        default=None,
        help="per-cell solver strategy for remote sweeps (default: the "
        "exact dispatch, byte-identical to the offline front)",
    )
    front.add_argument(
        "--priority", type=int, default=0, help="larger runs earlier"
    )
    front.add_argument(
        "--progress",
        action="store_true",
        help="print each cell / refinement as it lands",
    )
    front.add_argument(
        "--wait-timeout",
        type=float,
        default=300.0,
        help="remote sweep deadline in seconds",
    )
    front.add_argument(
        "--output", default=None, help="write the front JSON here"
    )
    front.set_defaults(func=_cmd_front)

    campaign = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns with a resumable results cache",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="campaign spec file (YAML or JSON)")
        p.add_argument(
            "--dir",
            default=None,
            help="results-cache directory (default: campaigns/<spec name>)",
        )

    run = campaign_sub.add_parser(
        "run", help="execute the campaign's missing cells (cached cells are reused)"
    )
    _add_campaign_common(run)
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: sequential)",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="re-solve every cell, overwriting cached entries",
    )
    run.add_argument(
        "--strategy",
        default=None,
        help="override every solver entry with this strategy spec "
        "(changes the cache keys)",
    )
    _add_budget_flags(run)
    run.add_argument(
        "--quiet",
        action="store_true",
        help="only print the summary, not the per-cell table",
    )
    run.set_defaults(func=_cmd_campaign_run)

    status = campaign_sub.add_parser(
        "status", help="cache coverage of the campaign (no solving)"
    )
    _add_campaign_common(status)
    status.set_defaults(func=_cmd_campaign_status)

    report = campaign_sub.add_parser(
        "report", help="aggregate tables and solver comparisons from the cache"
    )
    _add_campaign_common(report)
    report.add_argument(
        "--by",
        default="platform,model,solver",
        help="comma-separated grouping axes "
        "(platform, model, rule, apps, modes, solver, objective)",
    )
    report.add_argument(
        "--baseline",
        default=None,
        help="solver name to use as the ratio baseline "
        "(default: first solver in the spec)",
    )
    report.add_argument(
        "--front",
        type=int,
        default=0,
        help="also grade the heuristic period/energy front on the first "
        "N scenarios (0 = off)",
    )
    report.set_defaults(func=_cmd_campaign_report)

    serve = sub.add_parser(
        "serve",
        help="run the solve-service daemon (HTTP API + priority job queue)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="results-cache directory for content-addressed dedup "
        "(default: in-memory only; share a campaign's cache dir to reuse "
        "its solved cells)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="jobs solved at once (process-pool size)",
    )
    serve.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="process = real parallelism (default); thread = lightweight, "
        "for tiny instances and tests",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=4096,
        help="finished jobs retained for status/result queries",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="bound on queued cells before new submissions are shed "
        "with HTTP 429 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--transport",
        choices=["auto", "shm", "pickle"],
        default="auto",
        help="instance transport used by the daemon's solve runner",
    )
    serve.add_argument(
        "--shard-name",
        default=None,
        help="shard identity of this daemon in a routed fleet "
        "(surfaced in /v1/metrics and /v1/healthz)",
    )
    serve.add_argument(
        "--engine",
        choices=_engine_choices(),
        default=None,
        help="daemon-default neighborhood engine for the local-search "
        "heuristics (job solver specs that pin their own engine win; "
        "surfaced in /v1/healthz)",
    )
    serve.add_argument(
        "--slow-solve-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="dump the span tree of any solve slower than this to stderr "
        "(default: disabled)",
    )
    serve.add_argument(
        "--obs-jsonl",
        default=None,
        metavar="PATH",
        help="append every recorded trace span to this JSONL file "
        "(default: in-memory ring buffer only)",
    )
    serve.set_defaults(func=_cmd_serve)

    route = sub.add_parser(
        "route",
        help="run the shard router: one /v1/* front door consistent-hash "
        "routing jobs over several solve daemons",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port", type=int, default=8786, help="0 picks an ephemeral port"
    )
    route.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="[NAME=]URL",
        help="front an already-running daemon (repeatable); "
        "e.g. --shard shard0=http://127.0.0.1:8787",
    )
    route.add_argument(
        "--spawn",
        type=int,
        default=0,
        metavar="N",
        help="spawn N local daemons on ephemeral ports and front them "
        "(terminated when the router exits)",
    )
    route.add_argument(
        "--cache-dir",
        default=None,
        help="with --spawn: per-shard cache directories are created "
        "under DIR/shard{i}",
    )
    route.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="executor of spawned daemons",
    )
    route.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="per-shard solve concurrency of spawned daemons",
    )
    route.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="per-shard queue bound of spawned daemons (429 shedding)",
    )
    route.add_argument(
        "--vnodes",
        type=int,
        default=None,
        help="virtual nodes per shard on the hash ring (default 192)",
    )
    route.add_argument(
        "--max-hops",
        type=int,
        default=3,
        help="shards tried per submission on connect failure or 429",
    )
    route.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between background shard health sweeps",
    )
    route.add_argument(
        "--fail-threshold",
        type=int,
        default=2,
        help="consecutive failures that mark a shard down",
    )
    route.add_argument(
        "--upstream-timeout",
        type=float,
        default=10.0,
        help="socket timeout for forwarded requests",
    )
    route.add_argument(
        "--redirect-results",
        action="store_true",
        help="answer result fetches with a 307 to the owning shard "
        "instead of proxying the payload",
    )
    route.set_defaults(func=_cmd_route)

    def _add_url(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url",
            default="http://127.0.0.1:8787",
            help="base URL of the running daemon",
        )

    submit = sub.add_parser(
        "submit", help="submit instance JSON file(s) to a running daemon"
    )
    submit.add_argument(
        "instances", nargs="+", help="instance JSON file(s) (see `generate`)"
    )
    _add_url(submit)
    submit.add_argument(
        "--objective", choices=["period", "latency", "energy"], default="period"
    )
    submit.add_argument(
        "--method",
        choices=["registry", "auto", "exact", "heuristic"],
        default="registry",
    )
    submit.add_argument(
        "--strategy",
        default=None,
        help="solver strategy name or composite spec (overrides --method)",
    )
    _add_budget_flags(submit)
    submit.add_argument("--max-period", type=float, default=None)
    submit.add_argument("--max-latency", type=float, default=None)
    submit.add_argument("--max-energy", type=float, default=None)
    submit.add_argument(
        "--priority", type=int, default=0, help="larger runs earlier"
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until results are in"
    )
    submit.add_argument(
        "--wait-timeout",
        type=float,
        default=300.0,
        help="overall --wait deadline in seconds",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list jobs (or --metrics) of a running daemon"
    )
    _add_url(jobs)
    jobs.add_argument(
        "--state",
        choices=["queued", "running", "done", "cancelled"],
        default=None,
    )
    jobs.add_argument("--limit", type=int, default=None)
    jobs.add_argument(
        "--metrics",
        action="store_true",
        help="print queue/job/solver counters instead of the job table",
    )
    jobs.set_defaults(func=_cmd_jobs)

    job_result = sub.add_parser(
        "job-result", help="fetch a finished job's result from a daemon"
    )
    job_result.add_argument("job_id")
    _add_url(job_result)
    job_result.add_argument(
        "--output", default=None, help="write the mapping JSON here"
    )
    job_result.set_defaults(func=_cmd_job_result)

    top = sub.add_parser(
        "top",
        help="live fleet/daemon dashboard: queue depth, shed rate, "
        "cache hit ratio, latency quantiles per shard",
    )
    _add_url(top)
    top.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="refresh every SECONDS instead of printing once",
    )
    top.set_defaults(func=_cmd_top)

    trace = sub.add_parser(
        "trace", help="fetch a trace by id and print its span tree"
    )
    trace.add_argument("trace_id")
    _add_url(trace)
    trace.add_argument(
        "--json",
        action="store_true",
        help="dump the raw span records instead of the rendered tree",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
