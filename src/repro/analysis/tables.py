"""Plain-text table rendering for bench reports."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned, pipe-separated plain-text table.

    Floats are formatted with 4 significant digits; everything else via
    ``str``.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    grid: List[List[str]] = [list(map(str, headers))]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        grid.append([fmt(c) for c in row])
    widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(grid):
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if idx == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)
