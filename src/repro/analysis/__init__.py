"""Analysis helpers: Pareto fronts, empirical complexity fits, tables.

* :mod:`pareto` -- exact (exhaustive) and heuristic period/energy and
  period/latency trade-off fronts, with dominance filtering;
* :mod:`complexity` -- runtime scaling measurements and log-log power-law
  fits for the Table 1/2 "polynomial" claims;
* :mod:`tables` -- plain-text table rendering for the bench reports;
* :mod:`campaigns` -- aggregation, solver-vs-solver ratios and
  Pareto-front quality grading over campaign results
  (:mod:`repro.experiments`).
"""

from .campaigns import (
    campaign_table,
    front_quality,
    heuristic_front_quality,
    solver_ratio_table,
    strategy_telemetry_table,
)
from .complexity import fit_power_law, measure_scaling
from .pareto import (
    pareto_filter,
    period_energy_front_exact,
    period_energy_front_heuristic,
)
from .stretch import solo_optima, solo_optimum, stretch_problem
from .tables import render_table

__all__ = [
    "campaign_table",
    "fit_power_law",
    "front_quality",
    "heuristic_front_quality",
    "measure_scaling",
    "pareto_filter",
    "solver_ratio_table",
    "strategy_telemetry_table",
    "period_energy_front_exact",
    "period_energy_front_heuristic",
    "render_table",
    "solo_optima",
    "solo_optimum",
    "stretch_problem",
]
