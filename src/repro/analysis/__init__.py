"""Analysis helpers: Pareto fronts, empirical complexity fits, tables.

* :mod:`pareto` -- exact (exhaustive) and heuristic period/energy and
  period/latency trade-off fronts, with dominance filtering;
* :mod:`complexity` -- runtime scaling measurements and log-log power-law
  fits for the Table 1/2 "polynomial" claims;
* :mod:`tables` -- plain-text table rendering for the bench reports.
"""

from .complexity import fit_power_law, measure_scaling
from .pareto import (
    pareto_filter,
    period_energy_front_exact,
    period_energy_front_heuristic,
)
from .stretch import solo_optima, solo_optimum, stretch_problem
from .tables import render_table

__all__ = [
    "fit_power_law",
    "measure_scaling",
    "pareto_filter",
    "period_energy_front_exact",
    "period_energy_front_heuristic",
    "render_table",
    "solo_optima",
    "solo_optimum",
    "stretch_problem",
]
