"""Analysis helpers: Pareto fronts, empirical complexity fits, tables.

* :mod:`pareto` -- exact (exhaustive) and heuristic period/energy and
  period/latency trade-off fronts, with dominance filtering;
* :mod:`front_engine` -- the anytime counterpart: warm-started parallel
  epsilon-constraint sweeps with incremental front merging and
  hypervolume telemetry;
* :mod:`complexity` -- runtime scaling measurements and log-log power-law
  fits for the Table 1/2 "polynomial" claims;
* :mod:`tables` -- plain-text table rendering for the bench reports;
* :mod:`campaigns` -- aggregation, solver-vs-solver ratios and
  Pareto-front quality grading over campaign results
  (:mod:`repro.experiments`).
"""

from .campaigns import (
    campaign_table,
    front_quality,
    heuristic_front_quality,
    solver_ratio_table,
    strategy_telemetry_table,
)
from .complexity import fit_power_law, measure_scaling
from .front_engine import (
    FrontResult,
    IncrementalFront,
    bisection_order,
    compute_front_anytime,
    hypervolume_2d,
    plan_front,
)
from .pareto import (
    front_thresholds,
    pareto_filter,
    period_candidates_for_front,
    period_energy_front_exact,
    period_energy_front_heuristic,
)
from .stretch import solo_optima, solo_optimum, stretch_problem
from .tables import render_table

__all__ = [
    "FrontResult",
    "IncrementalFront",
    "bisection_order",
    "campaign_table",
    "compute_front_anytime",
    "fit_power_law",
    "front_quality",
    "front_thresholds",
    "heuristic_front_quality",
    "hypervolume_2d",
    "measure_scaling",
    "pareto_filter",
    "period_candidates_for_front",
    "plan_front",
    "solver_ratio_table",
    "strategy_telemetry_table",
    "period_energy_front_exact",
    "period_energy_front_heuristic",
    "render_table",
    "solo_optima",
    "solo_optimum",
    "stretch_problem",
]
