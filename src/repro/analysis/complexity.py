"""Empirical complexity measurement: the reproduction arm of the paper's
"polynomial" and "NP-complete" claims.

For polynomial cells we measure solver runtime across instance sizes and
fit a power law ``t ~ c * size^k`` by least squares in log-log space; the
benches report the fitted exponent next to the theorem's bound.  For
NP-hard cells the same machinery exhibits the exponential blowup of the
exact solvers against the flat growth of the heuristics.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``time ~ coefficient * size^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"t ~ {self.coefficient:.3g} * n^{self.exponent:.2f} "
            f"(R^2={self.r_squared:.3f})"
        )


def fit_power_law(
    sizes: Sequence[float], times: Sequence[float]
) -> PowerLawFit:
    """Least-squares fit of ``log t = k log n + log c``.

    Non-positive samples are dropped (they carry no log-log information).
    """
    xs = [math.log(s) for s, t in zip(sizes, times) if s > 0 and t > 0]
    ys = [math.log(t) for s, t in zip(sizes, times) if s > 0 and t > 0]
    if len(xs) < 2:
        raise ValueError("need at least two positive samples to fit")
    k, logc = np.polyfit(xs, ys, 1)
    predictions = [k * x + logc for x in xs]
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    mean = sum(ys) / len(ys)
    ss_tot = sum((y - mean) ** 2 for y in ys) or 1e-30
    return PowerLawFit(
        exponent=float(k),
        coefficient=float(math.exp(logc)),
        r_squared=float(1.0 - ss_res / ss_tot),
    )


def measure_scaling(
    make_instance: Callable[[int], object],
    solve: Callable[[object], object],
    sizes: Sequence[int],
    *,
    repeats: int = 3,
) -> Tuple[List[int], List[float]]:
    """Median wall-clock runtime of ``solve(make_instance(size))`` per size.

    The instance is built outside the timed region; the median over
    ``repeats`` runs reduces scheduler noise (the guides' "no optimization
    without measuring" discipline).
    """
    measured: List[float] = []
    for size in sizes:
        instance = make_instance(size)
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            solve(instance)
            samples.append(time.perf_counter() - t0)
        samples.sort()
        measured.append(samples[len(samples) // 2])
    return list(sizes), measured
