"""Max-stretch objectives (Section 3.4, third weighting scheme).

The paper's Equation (6) supports ``W_a = 1 / X*_a`` where ``X*_a`` is the
criterion value application ``a`` would achieve *alone* on the platform;
``max_a W_a X_a`` is then the maximum stretch (slowdown) [Bender et al.].

This module computes the solo optima with the appropriate solver for the
problem's cell -- the paper's polynomial algorithms where they apply,
branch-and-bound otherwise -- and rebuilds the problem with stretch
weights.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..core.exceptions import SolverError
from ..core.objectives import stretch_weights, with_weights
from ..core.problem import ProblemInstance
from ..core.types import Criterion, MappingRule, PlatformClass


def solo_optimum(
    problem: ProblemInstance, app_index: int, criterion: Criterion
) -> float:
    """The optimal period or latency of one application alone on the
    platform (unweighted), using the cheapest applicable solver."""
    if criterion not in (Criterion.PERIOD, Criterion.LATENCY):
        raise SolverError("solo optima are defined for period and latency")
    solo_app = replace(problem.apps[app_index], weight=1.0)
    solo = ProblemInstance(
        apps=(solo_app,),
        platform=problem.platform,
        rule=problem.rule,
        model=problem.model,
        energy_model=problem.energy_model,
    )
    from ..algorithms import (
        minimize_latency_interval,
        minimize_latency_one_to_one_fully_hom,
        minimize_period_interval,
        minimize_period_one_to_one,
    )
    from ..algorithms.exact import exact_minimize

    cls = problem.platform.platform_class
    try:
        if criterion is Criterion.PERIOD:
            if problem.rule is MappingRule.ONE_TO_ONE:
                if cls is not PlatformClass.FULLY_HETEROGENEOUS:
                    return minimize_period_one_to_one(solo).objective
            elif cls is PlatformClass.FULLY_HOMOGENEOUS:
                return minimize_period_interval(solo).objective
        else:
            if problem.rule is MappingRule.ONE_TO_ONE:
                if cls is PlatformClass.FULLY_HOMOGENEOUS:
                    return minimize_latency_one_to_one_fully_hom(
                        solo
                    ).objective
            elif cls is not PlatformClass.FULLY_HETEROGENEOUS:
                return minimize_latency_interval(solo).objective
    except SolverError:
        pass
    return exact_minimize(solo, criterion).objective


def solo_optima(
    problem: ProblemInstance, criterion: Criterion
) -> Tuple[float, ...]:
    """``X*_a`` for every application."""
    return tuple(
        solo_optimum(problem, a, criterion) for a in range(problem.n_apps)
    )


def stretch_problem(
    problem: ProblemInstance, criterion: Criterion
) -> Tuple[ProblemInstance, Tuple[float, ...]]:
    """Rebuild the problem with max-stretch weights ``W_a = 1 / X*_a``.

    Returns the reweighted problem and the solo optima; the weighted
    objective of any solution on the returned problem is then exactly the
    maximum stretch of the original one.
    """
    optima = solo_optima(problem, criterion)
    apps = with_weights(problem.apps, stretch_weights(optima))
    return (
        ProblemInstance(
            apps=apps,
            platform=problem.platform,
            rule=problem.rule,
            model=problem.model,
            energy_model=problem.energy_model,
        ),
        optima,
    )
