"""Anytime period/energy front engine: warm-started epsilon-constraint
sweeps with incremental merging.

:func:`repro.analysis.pareto.period_energy_front_exact` is a cold
sequential loop: one full solve per period threshold, nothing usable until
the last cell finishes.  This module re-plans the same sweep as an
*anytime* pipeline:

* **Planner** -- :func:`plan_front` takes the deduped threshold list
  (:func:`repro.analysis.pareto.front_thresholds`) and orders the cells in
  **bisection order** (:func:`bisection_order`): both extremes first, then
  recursive midpoints.  The smallest threshold pins the high-energy end,
  the largest pins the global minimum energy, and every midpoint halves the
  largest unexplored gap -- so the hypervolume of the partial front climbs
  steeply long before the sweep completes.
* **Work sharing** -- adjacent cells warm-start each other.  Any completed
  cell whose *achieved* period fits under a pending cell's threshold is a
  feasible incumbent there, so its energy seeds the branch-and-bound prune
  bound (``exact_minimize(..., upper_bound=...)``).  The warm search keeps
  the cold search's first-optimal leaf (see the solver docstring), so the
  merged front stays byte-identical to the sequential sweep while the
  shared bounds cut the explored tree.
* **Incremental merge** -- :class:`IncrementalFront` folds ``(period,
  energy)`` points into a monotone non-dominated front as they land, with
  2-D hypervolume telemetry (:func:`hypervolume_2d`); the merged result
  equals a batch :func:`~repro.analysis.pareto.pareto_filter` of the same
  points under any arrival order.

:func:`compute_front_anytime` runs the whole pipeline in-process
(optionally across worker processes); the daemon-side counterpart that
feeds the same merge through :class:`repro.server.service.SolveService`
lives in :mod:`repro.server.fronts`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.problem import ProblemInstance
from ..core.types import MappingRule, PlatformClass
from .pareto import _min_energy_at_period, front_thresholds, pareto_filter

__all__ = [
    "FrontEvent",
    "FrontResult",
    "IncrementalFront",
    "bisection_order",
    "cell_dispatch_method",
    "compute_front_anytime",
    "hypervolume_2d",
    "plan_front",
]


def bisection_order(n: int) -> List[int]:
    """A coarse-to-fine visiting order of ``range(n)``: the endpoints
    first, then breadth-first midpoints of the remaining gaps.

    Deterministic, and a permutation of ``range(n)`` for every ``n >= 0``.
    Early prefixes spread (nearly) evenly over the index range, which is
    what makes the anytime front converge fast: each solved midpoint
    bounds the front across the widest unexplored threshold gap.
    """
    if n <= 0:
        return []
    if n == 1:
        return [0]
    order = [0, n - 1]
    seen = {0, n - 1}
    segments = [(0, n - 1)]
    while segments:
        next_segments: List[Tuple[int, int]] = []
        for lo, hi in segments:
            if hi - lo < 2:
                continue
            mid = (lo + hi) // 2
            if mid not in seen:
                seen.add(mid)
                order.append(mid)
            next_segments.append((lo, mid))
            next_segments.append((mid, hi))
        segments = next_segments
    return order


def plan_front(
    problem: ProblemInstance, *, max_points: int = 200
) -> Tuple[List[float], List[int]]:
    """The sweep plan: ``(thresholds, order)`` where ``thresholds`` is the
    ascending deduped cell list shared with the sequential exact sweep and
    ``order`` is the bisection visiting order over its indices."""
    thresholds = front_thresholds(problem, max_points=max_points)
    return thresholds, bisection_order(len(thresholds))


def cell_dispatch_method(problem: ProblemInstance) -> str:
    """The solve method a daemon-submitted front cell must use to match
    :func:`~repro.analysis.pareto._min_energy_at_period` byte-for-byte:
    ``"auto"`` on the polynomial (rule, platform) cells it routes to the
    closed-form solvers, ``"exact"`` (branch-and-bound) everywhere else.

    The registry default ("heuristic" on NP-hard energy cells) is *not*
    acceptable here -- the merged front must equal the offline exact front.
    """
    if (
        problem.rule is MappingRule.ONE_TO_ONE
        and problem.platform.platform_class
        is not PlatformClass.FULLY_HETEROGENEOUS
    ):
        return "auto"
    if (
        problem.rule is MappingRule.INTERVAL
        and problem.platform.platform_class is PlatformClass.FULLY_HOMOGENEOUS
    ):
        return "auto"
    return "exact"


def hypervolume_2d(
    points: Sequence[Tuple[float, float]],
    ref: Tuple[float, float],
) -> float:
    """The 2-D hypervolume (area dominated between the front and the
    reference point, both coordinates minimized).

    Points not strictly better than ``ref`` in both coordinates contribute
    nothing.  With a fixed reference the measure is monotone non-decreasing
    under adding points, and zero for an empty front.
    """
    ref_p, ref_e = ref
    eligible = sorted(
        {(p, e) for p, e in points if p < ref_p and e < ref_e}
    )
    area = 0.0
    prev_e = ref_e
    for p, e in eligible:
        if e >= prev_e:
            continue  # dominated within the staircase
        area += (ref_p - p) * (prev_e - e)
        prev_e = e
    return area


class IncrementalFront:
    """A monotone non-dominated ``(period, energy)`` front built point by
    point.

    ``add`` folds one achieved point in; the maintained set always equals
    ``pareto_filter`` of everything added so far (dominance is transitive,
    so discarding dominated points early never loses a final member).
    ``hypervolume`` tracks a running reference at the *nadir* of all points
    ever seen (+ a small margin so extreme points still count): both the
    front and the reference only grow, so the reported value is monotone
    non-decreasing as results land.
    """

    #: Relative margin pushing the running reference past the nadir.
    NADIR_MARGIN = 1e-3

    def __init__(self) -> None:
        self._points: List[Tuple[float, float]] = []
        self._nadir: Optional[Tuple[float, float]] = None
        self.n_added = 0

    def __len__(self) -> int:
        return len(self._points)

    def add(self, point: Tuple[float, float]) -> bool:
        """Fold one achieved ``(period, energy)`` point in.  Returns True
        when the front changed (the point was new and non-dominated)."""
        period, energy = float(point[0]), float(point[1])
        point = (period, energy)
        self.n_added += 1
        if self._nadir is None:
            self._nadir = point
        else:
            self._nadir = (
                max(self._nadir[0], period),
                max(self._nadir[1], energy),
            )
        for q in self._points:
            if q == point:
                return False
            if q[0] <= period and q[1] <= energy:
                return False  # dominated (strictly in >= one coordinate)
        self._points = [
            q for q in self._points if not (period <= q[0] and energy <= q[1])
        ] + [point]
        return True

    def front(self) -> List[Tuple[float, float]]:
        """The current front, sorted lexicographically (the same order
        :func:`~repro.analysis.pareto.pareto_filter` returns)."""
        return sorted(self._points)

    def reference(self) -> Optional[Tuple[float, float]]:
        """The running hypervolume reference: the nadir of every point
        ever added, pushed out by ``NADIR_MARGIN`` relatively."""
        if self._nadir is None:
            return None
        return (
            self._nadir[0] * (1.0 + self.NADIR_MARGIN),
            self._nadir[1] * (1.0 + self.NADIR_MARGIN),
        )

    def hypervolume(self, ref: Optional[Tuple[float, float]] = None) -> float:
        """Hypervolume against ``ref``, defaulting to :meth:`reference`."""
        if ref is None:
            ref = self.reference()
        if ref is None:
            return 0.0
        return hypervolume_2d(self._points, ref)


@dataclass(frozen=True)
class FrontEvent:
    """One merge event of an anytime run: which cell landed when, and the
    achieved point (None for an infeasible cell)."""

    elapsed: float
    threshold: float
    point: Optional[Tuple[float, float]]
    warm_bound: Optional[float] = None


@dataclass
class FrontResult:
    """The outcome of :func:`compute_front_anytime`."""

    front: List[Tuple[float, float]]
    thresholds: List[float]
    events: List[FrontEvent] = field(default_factory=list)
    wall_time: float = 0.0
    n_cells: int = 0
    n_infeasible: int = 0
    n_warm: int = 0

    def hypervolume_trajectory(
        self, ref: Tuple[float, float]
    ) -> List[Tuple[float, float]]:
        """``(elapsed, hypervolume)`` after each merge event, against a
        fixed reference (use the final front's extremes + margin)."""
        points: List[Tuple[float, float]] = []
        out: List[Tuple[float, float]] = []
        for event in self.events:
            if event.point is not None:
                points.append(event.point)
            out.append((event.elapsed, hypervolume_2d(points, ref)))
        return out


def _solve_cell(
    problem: ProblemInstance,
    threshold: float,
    energy_ubound: Optional[float],
) -> Optional[Tuple[float, float]]:
    """One epsilon-constraint cell: min energy s.t. period <= threshold.
    Module-level so process pools can pickle it."""
    solution = _min_energy_at_period(
        problem, threshold, energy_ubound=energy_ubound
    )
    if solution is None:
        return None
    return (solution.values.period, solution.values.energy)


def _warm_bound(
    threshold: float, completed: Dict[float, Optional[Tuple[float, float]]]
) -> Optional[float]:
    """The tightest known-achievable energy at ``threshold``: the minimum
    energy over completed cells whose *achieved* period fits (strictly)
    under the threshold -- that very mapping is feasible here, so its
    energy is a sound branch-and-bound upper bound."""
    best: Optional[float] = None
    for point in completed.values():
        if point is None:
            continue
        period, energy = point
        if period <= threshold and (best is None or energy < best):
            best = energy
    return best


def compute_front_anytime(
    problem: ProblemInstance,
    *,
    max_points: int = 200,
    workers: int = 1,
    warm_start: bool = True,
    on_event=None,
) -> FrontResult:
    """The anytime counterpart of
    :func:`~repro.analysis.pareto.period_energy_front_exact`: same cells,
    same solves, bisection order, neighbor warm-starting, optional process
    parallelism -- and a byte-identical final front.

    Parameters
    ----------
    problem:
        Any problem instance.
    max_points:
        Sweep plan size cap (shared with the sequential exact sweep).
    workers:
        Worker processes; ``1`` (default) solves inline in submission
        order, still warm-started.
    warm_start:
        Seed each exact cell's prune bound from the best completed
        incumbent achievable at its threshold (:func:`_warm_bound`).
    on_event:
        Optional callback invoked with each :class:`FrontEvent` as cells
        land (the anytime consumption hook).
    """
    start = time.perf_counter()
    thresholds, order = plan_front(problem, max_points=max_points)
    completed: Dict[float, Optional[Tuple[float, float]]] = {}
    merged = IncrementalFront()
    events: List[FrontEvent] = []
    n_warm = 0

    def record(
        threshold: float,
        point: Optional[Tuple[float, float]],
        bound: Optional[float],
    ) -> None:
        completed[threshold] = point
        if point is not None:
            merged.add(point)
        event = FrontEvent(
            elapsed=time.perf_counter() - start,
            threshold=threshold,
            point=point,
            warm_bound=bound,
        )
        events.append(event)
        if on_event is not None:
            on_event(event)

    if workers <= 1:
        for index in order:
            threshold = thresholds[index]
            bound = _warm_bound(threshold, completed) if warm_start else None
            if bound is not None:
                n_warm += 1
            record(threshold, _solve_cell(problem, threshold, bound), bound)
    else:
        # A sliding in-flight window: cells are launched in bisection
        # order, each warm-started from whatever has completed by its
        # submission time, so early extremes bound the midpoints.
        pending = list(order)
        in_flight = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            while pending or in_flight:
                while pending and len(in_flight) < workers:
                    index = pending.pop(0)
                    threshold = thresholds[index]
                    bound = (
                        _warm_bound(threshold, completed)
                        if warm_start
                        else None
                    )
                    if bound is not None:
                        n_warm += 1
                    future = pool.submit(
                        _solve_cell, problem, threshold, bound
                    )
                    in_flight[future] = (threshold, bound)
                done, _ = wait(
                    list(in_flight), return_when=FIRST_COMPLETED
                )
                for future in done:
                    threshold, bound = in_flight.pop(future)
                    record(threshold, future.result(), bound)

    points = [p for p in completed.values() if p is not None]
    result = FrontResult(
        front=pareto_filter(points),
        thresholds=thresholds,
        events=events,
        wall_time=time.perf_counter() - start,
        n_cells=len(thresholds),
        n_infeasible=sum(1 for p in completed.values() if p is None),
        n_warm=n_warm,
    )
    assert result.front == merged.front(), "incremental merge diverged"
    return result
