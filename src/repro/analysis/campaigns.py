"""Comparison and reporting over campaign results.

Consumes the :class:`~repro.experiments.CellRecord` lists produced by
:func:`repro.experiments.run_campaign` / ``load_records`` and reduces
them to the three artifacts an experiment section needs:

* :func:`campaign_table` -- per-cell aggregates (counts, mean objective,
  mean solve time) grouped by any subset of scenario/solver axes;
* :func:`solver_ratio_table` -- paired solver-vs-baseline objective
  ratios (geometric mean, win/tie/loss counts) over the scenarios both
  solved;
* :func:`strategy_telemetry_table` -- per-solver budget consumption
  (evaluations, budget-exhaustion rate, wall time) aggregated from the
  :class:`~repro.strategies.SolveTelemetry` records the cache persists;
* :func:`front_quality` / :func:`heuristic_front_quality` -- quality of
  an approximate period/energy Pareto front against the exact front of
  :func:`repro.analysis.period_energy_front_exact` (coverage plus
  relative energy excess).

All functions are pure: they never touch the cache or solve anything
(except :func:`heuristic_front_quality`, which computes the two fronts
it compares).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.problem import ProblemInstance
from .pareto import (
    pareto_filter,
    period_energy_front_exact,
    period_energy_front_heuristic,
)

__all__ = [
    "campaign_table",
    "front_quality",
    "heuristic_front_quality",
    "solver_ratio_table",
    "strategy_telemetry_table",
]

#: Scenario/solver axes usable as grouping keys in :func:`campaign_table`.
GROUP_KEYS = ("platform", "model", "rule", "apps", "modes", "solver", "objective")


def _group_value(record, key: str):
    if key == "solver":
        return record.solver.name
    if key == "objective":
        return record.solver.objective
    return record.scenario.axes()[key]


def campaign_table(
    records: Sequence,
    by: Sequence[str] = ("platform", "model", "solver"),
) -> Tuple[List[str], List[Tuple]]:
    """Aggregate campaign records into a per-group table.

    Parameters
    ----------
    records:
        :class:`~repro.experiments.CellRecord` sequence (from
        ``run_campaign(...).records`` or ``load_records``).
    by:
        Grouping axes, any subset of ``("platform", "model", "rule",
        "apps", "modes", "solver", "objective")``.

    Returns
    -------
    (headers, rows)
        Ready for :func:`repro.analysis.render_table`.  Each row holds
        the group values followed by cell count, ok count, cached count,
        mean objective over the ok cells (``"-"`` when none) and mean
        per-cell solve time in milliseconds.

    Raises
    ------
    ValueError
        On an unknown grouping key.
    """
    unknown = sorted(set(by) - set(GROUP_KEYS))
    if unknown:
        raise ValueError(f"unknown group key(s) {unknown}; allowed: {list(GROUP_KEYS)}")
    groups: Dict[Tuple, List] = {}
    for record in records:
        groups.setdefault(tuple(_group_value(record, k) for k in by), []).append(record)

    def sort_key(key: Tuple) -> Tuple:
        # Numbers sort numerically, strings lexicographically; the type
        # tag keeps mixed tuples comparable.
        return tuple(
            (0, v, "") if isinstance(v, (int, float)) else (1, 0, str(v))
            for v in key
        )

    rows = []
    for group_key in sorted(groups, key=sort_key):
        members = groups[group_key]
        ok = [r for r in members if r.ok]
        mean_obj = (
            f"{sum(r.objective for r in ok) / len(ok):.6g}" if ok else "-"
        )
        mean_ms = sum(r.wall_time for r in members) / len(members) * 1000
        rows.append(
            (
                *group_key,
                len(members),
                len(ok),
                sum(1 for r in members if r.cached),
                mean_obj,
                f"{mean_ms:.2f}",
            )
        )
    headers = [*by, "cells", "ok", "cached", "mean objective", "mean ms"]
    return headers, rows


def solver_ratio_table(
    records: Sequence,
    baseline: Optional[str] = None,
) -> Tuple[List[str], List[Tuple]]:
    """Paired objective ratios of every solver against a baseline.

    For each scenario both solvers completed (``status == "ok"``), the
    ratio ``other / baseline`` of the achieved objective is taken;
    ratios below 1 mean the other solver found a better (smaller)
    objective.  Scenarios where either side failed are skipped, so the
    comparison is always paired.

    Parameters
    ----------
    records:
        Campaign records covering at least two solver configurations.
    baseline:
        Solver name to compare against; defaults to the first solver
        encountered in ``records``.

    Returns
    -------
    (headers, rows)
        One row per non-baseline solver: paired scenario count,
        geometric-mean ratio, and win/tie/loss counts versus the
        baseline (a *win* is a strictly smaller objective).

    Raises
    ------
    ValueError
        When the baseline name does not occur in ``records``.
    """
    by_solver: Dict[str, Dict] = {}
    for record in records:
        by_solver.setdefault(record.solver.name, {})[record.scenario] = record
    if not by_solver:
        return (["solver", "paired", "geomean ratio", "wins", "ties", "losses"], [])
    if baseline is None:
        baseline = next(iter(by_solver))
    if baseline not in by_solver:
        raise ValueError(
            f"baseline solver {baseline!r} not in records "
            f"(have: {sorted(by_solver)})"
        )
    base = by_solver[baseline]
    rows = []
    for name, cells in by_solver.items():
        if name == baseline:
            continue
        ratios = []
        wins = ties = losses = 0
        for scenario, record in cells.items():
            other = base.get(scenario)
            if other is None or not record.ok or not other.ok:
                continue
            if other.objective == 0:
                continue
            ratio = record.objective / other.objective
            ratios.append(ratio)
            if math.isclose(record.objective, other.objective, rel_tol=1e-9):
                ties += 1
            elif record.objective < other.objective:
                wins += 1
            else:
                losses += 1
        geomean = (
            f"{math.exp(sum(math.log(r) for r in ratios) / len(ratios)):.4f}"
            if ratios
            else "-"
        )
        rows.append((name, len(ratios), geomean, wins, ties, losses))
    headers = ["solver", "paired", f"geomean vs {baseline}", "wins", "ties", "losses"]
    return headers, rows


def strategy_telemetry_table(
    records: Sequence,
) -> Tuple[List[str], List[Tuple]]:
    """Aggregate the per-solve telemetry of campaign records.

    Groups the records that carry a
    :class:`~repro.strategies.SolveTelemetry` by solver name and reduces
    each group to its budget-consumption profile.  Records written
    before the strategy layer (no telemetry) are skipped.

    Parameters
    ----------
    records:
        :class:`~repro.experiments.CellRecord` sequence.

    Returns
    -------
    (headers, rows)
        One row per solver: the strategy spec that ran, cell count,
        total and mean evaluations, how many solves exhausted their
        budget, and the mean wall time in milliseconds.  Empty when no
        record carries telemetry.
    """
    groups: Dict[str, List] = {}
    for record in records:
        if record.telemetry is not None:
            groups.setdefault(record.solver.name, []).append(record.telemetry)
    rows = []
    for name in sorted(groups):
        telemetries = groups[name]
        total_evals = sum(t.evaluations for t in telemetries)
        n_exhausted = sum(1 for t in telemetries if t.budget_exhausted)
        mean_ms = sum(t.wall_time for t in telemetries) / len(telemetries) * 1000
        rows.append(
            (
                name,
                telemetries[0].strategy,
                len(telemetries),
                total_evals,
                f"{total_evals / len(telemetries):.0f}",
                n_exhausted,
                f"{mean_ms:.2f}",
            )
        )
    headers = [
        "solver",
        "strategy",
        "cells",
        "evaluations",
        "mean evals",
        "exhausted",
        "mean ms",
    ]
    return headers, rows


def front_quality(
    exact: Sequence[Tuple[float, float]],
    approx: Sequence[Tuple[float, float]],
) -> Dict[str, float]:
    """Quality metrics of an approximate period/energy front.

    Parameters
    ----------
    exact:
        The reference non-dominated ``(period, energy)`` points
        (e.g. from :func:`repro.analysis.period_energy_front_exact`).
    approx:
        The approximate front to grade.

    Returns
    -------
    dict
        ``n_exact`` / ``n_approx`` point counts; ``coverage`` -- the
        fraction of approximate points that survive dominance filtering
        against the union (1.0 means every approximate point lies on the
        true front); ``mean_excess`` / ``max_excess`` -- relative energy
        excess of the approximation at each exact period threshold
        (0.0 means the approximation matches the optimum wherever it is
        feasible); ``reachable`` -- fraction of exact thresholds at
        which the approximation has any feasible point.
    """
    exact = pareto_filter(list(exact))
    approx_list = list(approx)
    if not approx_list or not exact:
        return {
            "n_exact": float(len(exact)),
            "n_approx": float(len(approx_list)),
            "coverage": 0.0,
            "reachable": 0.0,
            "mean_excess": math.inf,
            "max_excess": math.inf,
        }
    union = pareto_filter(exact + approx_list)
    on_front = sum(1 for p in approx_list if p in union)
    excesses = []
    reachable = 0
    for period_star, energy_star in exact:
        feasible = [e for t, e in approx_list if t <= period_star * (1 + 1e-9)]
        if not feasible:
            continue
        reachable += 1
        if energy_star > 0:
            excesses.append((min(feasible) - energy_star) / energy_star)
    return {
        "n_exact": float(len(exact)),
        "n_approx": float(len(approx_list)),
        "coverage": on_front / len(approx_list),
        "reachable": reachable / len(exact),
        "mean_excess": sum(excesses) / len(excesses) if excesses else 0.0,
        "max_excess": max(excesses) if excesses else 0.0,
    }


def heuristic_front_quality(
    problem: ProblemInstance,
    *,
    max_points: int = 50,
    n_points: int = 20,
) -> Dict[str, float]:
    """Grade the heuristic period/energy front of one instance.

    Computes the exact front
    (:func:`repro.analysis.period_energy_front_exact`), seeds the
    heuristic front from the registry-dispatched period solution
    (:func:`repro.service.solve_one`), and compares the two with
    :func:`front_quality`.

    Parameters
    ----------
    problem:
        The instance to analyze (small enough for the exact sweep).
    max_points:
        Cap on exact-front period candidates.
    n_points:
        Heuristic front resolution.

    Returns
    -------
    dict
        The :func:`front_quality` metrics.
    """
    from ..service import solve_one

    exact = period_energy_front_exact(problem, max_points=max_points)
    start = solve_one(problem, objective="period")
    approx = period_energy_front_heuristic(problem, start, n_points=n_points)
    return front_quality(exact, approx)
