"""Pareto trade-off fronts between period and energy.

Section 2's worked example is exactly one point on the period/energy front
(period <= 2 at energy 46, versus energy 136 at the optimal period 1 and
energy 10 at period 14).  These helpers enumerate the whole front:

* exactly, by sweeping the candidate period thresholds and solving the
  minimum-energy problem at each (polynomial solvers on polynomial cells,
  branch-and-bound elsewhere);
* heuristically, with the greedy mode-downgrade heuristic, for instances
  beyond exact reach.

The anytime/parallel counterpart of the exact sweep lives in
:mod:`repro.analysis.front_engine`; both share the same threshold plan
(:func:`front_thresholds`) so they solve identical cells.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import InfeasibleProblemError
from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion, MappingRule, PlatformClass
from ..kernel.vectorized import interval_cycle_matrix, weighted_cycle_candidates

#: Relative tolerance under which two period candidates are considered the
#: same epsilon-constraint cell.  Well below ``THRESHOLD_RTOL``, so merged
#: candidates could never have admitted different mappings anyway.
CANDIDATE_RTOL = 1e-9


def _pareto_filter_scalar(
    points: Sequence[Tuple[float, ...]],
) -> List[Tuple[float, ...]]:
    """Reference ``O(n^2 d)`` dominance filter (all coordinates minimized).

    Kept as the fallback for ragged or non-numeric points and as the
    byte-identity oracle for the vectorized path in the tests.
    """
    out: List[Tuple[float, ...]] = []
    for p in points:
        dominated = False
        for q in points:
            if q == p:
                continue
            if all(qi <= pi for qi, pi in zip(q, p)) and any(
                qi < pi for qi, pi in zip(q, p)
            ):
                dominated = True
                break
        if not dominated and p not in out:
            out.append(p)
    return sorted(out)


def pareto_filter(
    points: Sequence[Tuple[float, ...]],
) -> List[Tuple[float, ...]]:
    """The non-dominated subset (all coordinates minimized), sorted
    lexicographically.

    One vectorized ``O(n^2)``-comparison pass (``q`` dominates ``p`` iff
    ``all(q <= p) and any(q < p)``) instead of the Python triple loop;
    the original tuples are returned unchanged and deduplicated in first-
    appearance order, so the result is byte-identical to the scalar
    reference.  Ragged or non-numeric inputs fall back to the scalar loop.
    """
    if len(points) <= 1:
        return _pareto_filter_scalar(points)
    try:
        arr = np.asarray(points, dtype=np.float64)
    except (TypeError, ValueError):
        return _pareto_filter_scalar(points)
    if arr.ndim != 2:
        return _pareto_filter_scalar(points)
    # le[q, p] / lt[q, p]: q weakly / strictly better than p, per point.
    cmp = arr[:, None, :] - arr[None, :, :]
    le = (cmp <= 0).all(axis=2)
    lt = (cmp < 0).any(axis=2)
    dominated = (le & lt).any(axis=0)
    out: List[Tuple[float, ...]] = []
    for i, p in enumerate(points):
        if not dominated[i] and p not in out:
            out.append(p)
    return sorted(out)


def _min_energy_at_period(
    problem: ProblemInstance,
    period_bound: float,
    context=None,
    energy_ubound: Optional[float] = None,
) -> Optional[Solution]:
    """Cheapest mapping with weighted period <= bound, via the polynomial
    solver when the cell allows it, branch-and-bound otherwise.

    ``energy_ubound`` optionally warm-starts the branch-and-bound prune
    bound from a known-achievable energy (the incumbent of a neighboring
    sweep cell); the polynomial solvers ignore it.  Should the warm run
    report infeasibility (a bound that was not actually achievable at this
    threshold), the cell is re-solved cold, so the result never depends on
    the hint.
    """
    from ..algorithms import (
        minimize_energy_given_period_interval,
        minimize_energy_given_period_one_to_one,
    )
    from ..algorithms.exact import exact_minimize

    thresholds = Thresholds(period=period_bound)
    try:
        if (
            problem.rule is MappingRule.ONE_TO_ONE
            and problem.platform.platform_class
            is not PlatformClass.FULLY_HETEROGENEOUS
        ):
            return minimize_energy_given_period_one_to_one(problem, thresholds)
        if (
            problem.rule is MappingRule.INTERVAL
            and problem.platform.platform_class
            is PlatformClass.FULLY_HOMOGENEOUS
        ):
            return minimize_energy_given_period_interval(
                problem, thresholds, context=context
            )
        if energy_ubound is not None:
            try:
                return exact_minimize(
                    problem,
                    Criterion.ENERGY,
                    thresholds,
                    upper_bound=energy_ubound,
                )
            except InfeasibleProblemError:
                pass  # stale hint: fall through to the cold solve
        return exact_minimize(problem, Criterion.ENERGY, thresholds)
    except InfeasibleProblemError:
        return None


def period_candidates_for_front(
    problem: ProblemInstance, *, rtol: float = CANDIDATE_RTOL
) -> List[float]:
    """All achievable weighted per-interval cycle-times: a superset of the
    periods at which the energy front can break.

    Tabulated through the vectorized kernel: one cycle-time matrix per
    (application, distinct speed) pair instead of a four-deep Python loop.
    Candidates within relative tolerance ``rtol`` of each other (floating-
    point echoes of the same cycle time reached along different speed /
    bandwidth combinations) are merged onto the smallest member, so sweeps
    don't re-solve effectively-identical thresholds.
    """
    one_to_one = problem.rule is MappingRule.ONE_TO_ONE
    speeds = sorted(
        {
            s
            for u in range(problem.platform.n_processors)
            for s in problem.platform.processor(u).speeds
        }
    )
    chunks: List[np.ndarray] = []
    for a, app in enumerate(problem.apps):
        # Communication terms bounded by the extreme bandwidths; with
        # homogeneous links this is exact.
        bw = problem.platform.app_bandwidths.get(
            a, problem.platform.default_bandwidth
        )
        if one_to_one:
            # Single-stage intervals only: the offset-1 diagonal of the
            # kernel's cycle-time matrix (one combine implementation).
            n = app.n_stages
            stages = np.arange(n)
            for s in speeds:
                cycle = interval_cycle_matrix(app, s, bw, problem.model)
                chunks.append(app.weight * cycle[stages, stages + 1])
        else:
            chunks.append(
                weighted_cycle_candidates(app, speeds, bw, problem.model)
            )
    values = np.unique(np.concatenate(chunks))
    values = values[np.isfinite(values) & (values > 0)]
    return dedupe_within_rtol(values.tolist(), rtol=rtol)


def dedupe_within_rtol(
    values: Sequence[float], *, rtol: float = CANDIDATE_RTOL
) -> List[float]:
    """Collapse an ascending sequence of positive floats so consecutive
    survivors differ by more than ``rtol`` relatively (the first member of
    each near-duplicate run is kept)."""
    out: List[float] = []
    for v in values:
        if not out or v > out[-1] * (1.0 + rtol):
            out.append(v)
    return out


def front_thresholds(
    problem: ProblemInstance, *, max_points: int = 200
) -> List[float]:
    """The sweep plan shared by :func:`period_energy_front_exact` and the
    anytime engine: the deduped period candidates, subsampled to at most
    ``max_points`` (+ the largest candidate, always kept so the unconstrained
    minimum-energy end of the front is reachable)."""
    candidates = period_candidates_for_front(problem)
    if len(candidates) > max_points:
        step = len(candidates) / max_points
        candidates = [
            candidates[int(i * step)] for i in range(max_points)
        ] + [candidates[-1]]
    return candidates


def period_energy_front_exact(
    problem: ProblemInstance,
    *,
    max_points: int = 200,
    context=None,
) -> List[Tuple[float, float]]:
    """The exact period/energy Pareto front: sweep the candidate period
    thresholds, solve min-energy at each, keep non-dominated
    ``(period, energy)`` pairs (the *achieved* period is reported, not the
    threshold).  ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` across the sweep."""
    candidates = front_thresholds(problem, max_points=max_points)
    points: List[Tuple[float, float]] = []
    for bound in candidates:
        solution = _min_energy_at_period(problem, bound, context=context)
        if solution is None:
            continue
        points.append((solution.values.period, solution.values.energy))
    return pareto_filter(points)


def period_energy_front_heuristic(
    problem: ProblemInstance,
    start_solution: Solution,
    *,
    n_points: int = 20,
) -> List[Tuple[float, float]]:
    """A heuristic front: relax the period threshold geometrically from the
    start solution's period and run greedy mode-downgrading at each level."""
    from ..algorithms.heuristics import greedy_mode_downgrade

    base = start_solution.values.period
    points: List[Tuple[float, float]] = [
        (start_solution.values.period, start_solution.values.energy)
    ]
    for i in range(1, n_points + 1):
        bound = base * (1.0 + 0.35 * i)
        sol = greedy_mode_downgrade(
            problem, start_solution.mapping, Thresholds(period=bound)
        )
        points.append((sol.values.period, sol.values.energy))
    return pareto_filter(points)
