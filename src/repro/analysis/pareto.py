"""Pareto trade-off fronts between period and energy.

Section 2's worked example is exactly one point on the period/energy front
(period <= 2 at energy 46, versus energy 136 at the optimal period 1 and
energy 10 at period 14).  These helpers enumerate the whole front:

* exactly, by sweeping the candidate period thresholds and solving the
  minimum-energy problem at each (polynomial solvers on polynomial cells,
  branch-and-bound elsewhere);
* heuristically, with the greedy mode-downgrade heuristic, for instances
  beyond exact reach.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion, MappingRule, PlatformClass


def pareto_filter(
    points: Sequence[Tuple[float, ...]],
) -> List[Tuple[float, ...]]:
    """The non-dominated subset (all coordinates minimized), sorted
    lexicographically.  ``O(n^2 d)`` -- fine for front sizes here."""
    out: List[Tuple[float, ...]] = []
    for p in points:
        dominated = False
        for q in points:
            if q == p:
                continue
            if all(qi <= pi for qi, pi in zip(q, p)) and any(
                qi < pi for qi, pi in zip(q, p)
            ):
                dominated = True
                break
        if not dominated and p not in out:
            out.append(p)
    return sorted(out)


def _min_energy_at_period(
    problem: ProblemInstance, period_bound: float
) -> Optional[Solution]:
    """Cheapest mapping with weighted period <= bound, via the polynomial
    solver when the cell allows it, branch-and-bound otherwise."""
    from ..algorithms import (
        minimize_energy_given_period_interval,
        minimize_energy_given_period_one_to_one,
    )
    from ..algorithms.exact import exact_minimize

    thresholds = Thresholds(period=period_bound)
    try:
        if (
            problem.rule is MappingRule.ONE_TO_ONE
            and problem.platform.platform_class
            is not PlatformClass.FULLY_HETEROGENEOUS
        ):
            return minimize_energy_given_period_one_to_one(problem, thresholds)
        if (
            problem.rule is MappingRule.INTERVAL
            and problem.platform.platform_class
            is PlatformClass.FULLY_HOMOGENEOUS
        ):
            return minimize_energy_given_period_interval(problem, thresholds)
        return exact_minimize(problem, Criterion.ENERGY, thresholds)
    except InfeasibleProblemError:
        return None


def period_candidates_for_front(problem: ProblemInstance) -> List[float]:
    """All achievable weighted per-interval cycle-times: a superset of the
    periods at which the energy front can break."""
    values = set()
    for a, app in enumerate(problem.apps):
        for u in range(problem.platform.n_processors):
            for speed in problem.platform.processor(u).speeds:
                for lo in range(app.n_stages):
                    hi_range = (
                        (lo,)
                        if problem.rule is MappingRule.ONE_TO_ONE
                        else range(lo, app.n_stages)
                    )
                    for hi in hi_range:
                        # Communication terms bounded by the extreme
                        # bandwidths; with homogeneous links this is exact.
                        bw = problem.platform.app_bandwidths.get(
                            a, problem.platform.default_bandwidth
                        )
                        t_in = app.input_size(lo) / bw
                        t_out = app.output_size(hi) / bw
                        t_comp = app.work_sum(lo, hi) / speed
                        values.add(
                            app.weight
                            * problem.model.combine(t_in, t_comp, t_out)
                        )
    return sorted(v for v in values if math.isfinite(v) and v > 0)


def period_energy_front_exact(
    problem: ProblemInstance,
    *,
    max_points: int = 200,
) -> List[Tuple[float, float]]:
    """The exact period/energy Pareto front: sweep the candidate period
    thresholds, solve min-energy at each, keep non-dominated
    ``(period, energy)`` pairs (the *achieved* period is reported, not the
    threshold)."""
    candidates = period_candidates_for_front(problem)
    if len(candidates) > max_points:
        step = len(candidates) / max_points
        candidates = [
            candidates[int(i * step)] for i in range(max_points)
        ] + [candidates[-1]]
    points: List[Tuple[float, float]] = []
    for bound in candidates:
        solution = _min_energy_at_period(problem, bound)
        if solution is None:
            continue
        points.append((solution.values.period, solution.values.energy))
    return pareto_filter(points)


def period_energy_front_heuristic(
    problem: ProblemInstance,
    start_solution: Solution,
    *,
    n_points: int = 20,
) -> List[Tuple[float, float]]:
    """A heuristic front: relax the period threshold geometrically from the
    start solution's period and run greedy mode-downgrading at each level."""
    from ..algorithms.heuristics import greedy_mode_downgrade

    base = start_solution.values.period
    points: List[Tuple[float, float]] = [
        (start_solution.values.period, start_solution.values.energy)
    ]
    for i in range(1, n_points + 1):
        bound = base * (1.0 + 0.35 * i)
        sol = greedy_mode_downgrade(
            problem, start_solution.mapping, Thresholds(period=bound)
        )
        points.append((sol.values.period, sol.values.energy))
    return pareto_filter(points)
