"""Campaign execution, caching and resume (``repro.experiments.runner``)."""

import math

import pytest

import repro.experiments.runner as runner_module
from repro.experiments import (
    CampaignSpec,
    ResultsCache,
    campaign_status,
    load_records,
    run_campaign,
)


def make_spec(seeds=2, solvers=None):
    return CampaignSpec.from_dict(
        {
            "name": "test-sweep",
            "scenarios": {
                "platforms": ["fully-homogeneous", "comm-homogeneous"],
                "models": ["overlap", "no-overlap"],
                "seeds": seeds,
            },
            "solvers": solvers
            or [
                {"name": "registry", "objective": "period"},
                {"name": "greedy", "objective": "period", "method": "heuristic"},
            ],
        }
    )


class TestRunAndCacheHits:
    def test_cold_run_solves_everything(self, tmp_path):
        spec = make_spec()
        result = run_campaign(spec, tmp_path)
        assert result.n_cells == spec.n_cells == 16
        assert result.n_solved == 16 and result.n_cached == 0
        assert result.n_ok == 16
        assert all(math.isfinite(r.objective) for r in result.records)

    def test_warm_rerun_is_pure_cache_hits(self, tmp_path):
        spec = make_spec()
        run_campaign(spec, tmp_path)
        rerun = run_campaign(spec, tmp_path)
        assert rerun.n_solved == 0
        assert rerun.n_cached == spec.n_cells
        assert rerun.n_ok == spec.n_cells

    def test_cached_results_match_fresh_ones(self, tmp_path):
        spec = make_spec()
        cold = run_campaign(spec, tmp_path)
        warm = run_campaign(spec, tmp_path)
        for a, b in zip(cold.records, warm.records):
            assert a.key == b.key
            assert a.objective == pytest.approx(b.objective)
            assert a.values == pytest.approx(b.values)

    def test_force_resolves_everything(self, tmp_path):
        spec = make_spec()
        run_campaign(spec, tmp_path)
        forced = run_campaign(spec, tmp_path, force=True)
        assert forced.n_solved == spec.n_cells
        assert forced.n_cached == 0

    def test_records_in_deterministic_spec_order(self, tmp_path):
        spec = make_spec()
        result = run_campaign(spec, tmp_path)
        expected = [(sc, sv) for sv in spec.solvers for sc in spec.scenarios()]
        got = [(r.scenario, r.solver) for r in result.records]
        assert got == expected


class TestResume:
    def test_extending_the_spec_reuses_existing_cells(self, tmp_path):
        small = make_spec(seeds=1)
        run_campaign(small, tmp_path)
        extended = make_spec(seeds=2)
        result = run_campaign(extended, tmp_path)
        # seeds=1 cells (8) are cached; only the seed-1 cells compute.
        assert result.n_cached == small.n_cells
        assert result.n_solved == extended.n_cells - small.n_cells

    def test_half_deleted_cache_recomputes_only_missing(self, tmp_path):
        spec = make_spec()
        run_campaign(spec, tmp_path)
        cache = ResultsCache(tmp_path)
        keys = list(cache.keys())
        removed = keys[::2]
        for key in removed:
            cache.path(key).unlink()
        result = run_campaign(spec, tmp_path)
        assert result.n_solved == len(removed)
        assert result.n_cached == spec.n_cells - len(removed)

    def test_kill_mid_campaign_then_rerun(self, tmp_path, monkeypatch):
        """Interrupt the run between solver batches; the rerun must
        recompute exactly the cells the interrupted run never reached."""
        spec = make_spec()
        real_solve_batch = runner_module.solve_batch
        calls = {"n": 0}

        def interrupting(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:  # second solver config: simulate the kill
                raise KeyboardInterrupt
            return real_solve_batch(*args, **kwargs)

        monkeypatch.setattr(runner_module, "solve_batch", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, tmp_path)
        monkeypatch.setattr(runner_module, "solve_batch", real_solve_batch)

        status = campaign_status(spec, tmp_path)
        assert 0 < status.n_done < spec.n_cells  # partial progress persisted
        result = run_campaign(spec, tmp_path)
        assert result.n_cached == status.n_done
        assert result.n_solved == spec.n_cells - status.n_done
        assert campaign_status(spec, tmp_path).complete

    def test_kill_mid_solver_batch_keeps_finished_chunks(
        self, tmp_path, monkeypatch
    ):
        """Results are flushed to the cache in bounded chunks, so a kill
        inside one solver's work still preserves its finished chunks."""
        spec = CampaignSpec.from_dict(
            {
                "name": "chunked",
                "scenarios": {
                    "platforms": ["fully-homogeneous"],
                    "seeds": 20,  # > one 16-cell chunk for a single solver
                },
                "solvers": [{"name": "registry", "objective": "period"}],
            }
        )
        real_solve_batch = runner_module.solve_batch
        calls = {"n": 0}

        def interrupting(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:  # kill during the second chunk
                raise KeyboardInterrupt
            return real_solve_batch(*args, **kwargs)

        monkeypatch.setattr(runner_module, "solve_batch", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, tmp_path)
        monkeypatch.setattr(runner_module, "solve_batch", real_solve_batch)

        status = campaign_status(spec, tmp_path)
        assert status.n_done == 16  # exactly the first chunk survived
        result = run_campaign(spec, tmp_path)
        assert result.n_cached == 16 and result.n_solved == 4

    def test_solve_count_matches_misses_exactly(self, tmp_path, monkeypatch):
        spec = make_spec()
        run_campaign(spec, tmp_path)
        cache = ResultsCache(tmp_path)
        victim = next(iter(cache.keys()))
        cache.path(victim).unlink()

        solved_problems = []
        real_solve_batch = runner_module.solve_batch

        def counting(problems, *args, **kwargs):
            solved_problems.extend(problems)
            return real_solve_batch(problems, *args, **kwargs)

        monkeypatch.setattr(runner_module, "solve_batch", counting)
        result = run_campaign(spec, tmp_path)
        assert len(solved_problems) == 1
        assert result.n_solved == 1


class TestStatusAndRecords:
    def test_status_lifecycle(self, tmp_path):
        spec = make_spec()
        before = campaign_status(spec, tmp_path)
        assert before.n_done == 0
        assert before.n_missing == spec.n_cells
        assert not before.complete
        assert before.per_solver == {"registry": (0, 8), "greedy": (0, 8)}
        run_campaign(spec, tmp_path)
        after = campaign_status(spec, tmp_path)
        assert after.complete
        assert after.per_solver == {"registry": (8, 8), "greedy": (8, 8)}
        assert "16/16" in after.summary()

    def test_load_records_partial(self, tmp_path):
        spec = make_spec()
        run_campaign(spec, tmp_path)
        cache = ResultsCache(tmp_path)
        keys = list(cache.keys())
        cache.path(keys[0]).unlink()
        records = load_records(spec, tmp_path)
        assert len(records) == spec.n_cells - 1
        assert all(r.cached for r in records)

    def test_summary_mentions_counts(self, tmp_path):
        spec = make_spec()
        result = run_campaign(spec, tmp_path)
        summary = result.summary()
        assert "16 cells" in summary and "16 solved" in summary


class TestEnergyObjective:
    def test_energy_solver_runs_under_period_bound(self, tmp_path):
        spec = CampaignSpec.from_dict(
            {
                "name": "energy-sweep",
                "scenarios": {"platforms": ["fully-homogeneous"], "seeds": 2},
                "solvers": [
                    {"name": "server", "objective": "energy", "max_period": 100.0}
                ],
            }
        )
        result = run_campaign(spec, tmp_path)
        assert result.n_ok == result.n_cells == 2
        for record in result.records:
            assert record.values["period"] <= 100.0 * (1 + 1e-9)


def make_strategy_spec(seed=7):
    """A campaign whose solver is a budgeted, seeded portfolio (the
    stochastic annealing member makes determinism non-trivial)."""
    return CampaignSpec.from_dict(
        {
            "name": "strategy-sweep",
            "scenarios": {
                "platforms": ["fully-heterogeneous"],
                "seeds": 3,
            },
            "solvers": [
                {
                    "name": "racer",
                    "objective": "period",
                    "strategy": "portfolio(greedy,local_search,annealing)",
                    "budget": {"max_evaluations": 2000, "seed": seed},
                },
            ],
        }
    )


class TestStrategySolvers:
    def test_telemetry_persisted_and_reloaded(self, tmp_path):
        spec = make_strategy_spec()
        fresh = run_campaign(spec, tmp_path)
        assert fresh.n_ok == fresh.n_cells == 3
        for record in fresh.records:
            assert record.telemetry is not None
            assert record.telemetry.strategy == (
                "portfolio(greedy,local_search,annealing)"
            )
            assert len(record.telemetry.members) == 3
        cached = run_campaign(spec, tmp_path)
        assert cached.n_solved == 0
        for a, b in zip(fresh.records, cached.records):
            assert b.telemetry is not None
            assert b.telemetry.to_dict() == a.telemetry.to_dict()

    def test_identical_specs_reproduce_identical_results(self, tmp_path):
        """Satellite: deterministic seeds thread from the budget down to
        the numpy Generator, so two fresh runs of the same spec agree."""
        spec = make_strategy_spec()
        first = run_campaign(spec, tmp_path / "a")
        second = run_campaign(spec, tmp_path / "b")
        assert [r.objective for r in first.records] == [
            r.objective for r in second.records
        ]

        def member_outcomes(record):  # wall_time varies; results must not
            return [
                (m.strategy, m.status, m.objective, m.evaluations)
                for m in record.telemetry.members
            ]

        assert [member_outcomes(r) for r in first.records] == [
            member_outcomes(r) for r in second.records
        ]

    def test_budget_change_changes_cache_key(self, tmp_path):
        run_campaign(make_strategy_spec(seed=7), tmp_path)
        rerun = run_campaign(make_strategy_spec(seed=8), tmp_path)
        assert rerun.n_solved == rerun.n_cells  # different digest, no hits

    def test_legacy_method_records_carry_telemetry(self, tmp_path):
        spec = make_spec()
        result = run_campaign(spec, tmp_path)
        for record in result.records:
            assert record.telemetry is not None
            assert record.telemetry.strategy in ("registry", "heuristic")

    def test_pre_strategy_cache_entries_still_load(self, tmp_path):
        """Schema-1 records (no telemetry field) read back as None."""
        spec = make_spec(seeds=1)
        run_campaign(spec, tmp_path)
        cache = ResultsCache(tmp_path)
        for key in cache.keys():
            payload = cache.get(key)
            payload.pop("telemetry", None)
            payload["schema"] = 1
            cache.put(key, payload)
        records = load_records(spec, tmp_path)
        assert len(records) == spec.n_cells
        assert all(r.telemetry is None for r in records)
