"""Content-addressed results cache (``repro.experiments.cache``)."""

from repro.experiments import (
    ResultsCache,
    cell_key,
    combine_digests,
    instance_digest,
    solver_digest,
)
from repro.generators import small_random_problem


class TestDigests:
    def test_equal_instances_hash_equal(self):
        assert instance_digest(small_random_problem(1)) == instance_digest(
            small_random_problem(1)
        )

    def test_different_instances_hash_different(self):
        assert instance_digest(small_random_problem(1)) != instance_digest(
            small_random_problem(2)
        )

    def test_solver_digest_ignores_name(self):
        a = {"name": "fast", "objective": "period", "method": "auto"}
        b = {"name": "renamed", "objective": "period", "method": "auto"}
        c = {"name": "fast", "objective": "latency", "method": "auto"}
        assert solver_digest(a) == solver_digest(b)
        assert solver_digest(a) != solver_digest(c)

    def test_cell_key_is_combine_of_the_two_digests(self):
        # The runner precomputes the digests and combines them itself;
        # this pins the two paths to the same key format.
        problem = small_random_problem(1)
        solver = {"name": "a", "objective": "period"}
        assert cell_key(problem, solver) == combine_digests(
            instance_digest(problem), solver_digest(solver)
        )

    def test_cell_key_depends_on_both_parts(self):
        p1, p2 = small_random_problem(1), small_random_problem(2)
        s1 = {"name": "a", "objective": "period"}
        s2 = {"name": "a", "objective": "latency"}
        keys = {
            cell_key(p1, s1),
            cell_key(p1, s2),
            cell_key(p2, s1),
            cell_key(p2, s2),
        }
        assert len(keys) == 4


class TestResultsCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultsCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert "0" * 64 not in cache

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "ab" + "0" * 62
        record = {"status": "ok", "objective": 1.5}
        cache.put(key, record)
        assert key in cache
        assert cache.get(key) == record
        assert list(cache.keys()) == [key]
        assert len(cache) == 1

    def test_two_level_fanout(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {})
        assert cache.path(key) == tmp_path / "cd" / f"{key}.json"
        assert cache.path(key).exists()

    def test_overwrite(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "aa" + "3" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"truncated": ')  # simulates a pre-atomic crash
        assert cache.get(key) is None
        assert not path.exists()

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultsCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "4" * 62, {"i": i})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_empty_cache_iterates_nothing(self, tmp_path):
        cache = ResultsCache(tmp_path / "never-created")
        assert list(cache.keys()) == []
        assert len(cache) == 0


class TestMemoLRU:
    def test_hit_avoids_disk_read(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "ab" + "6" * 62
        cache.put(key, {"v": 1})  # put memoizes
        cache.path(key).unlink()  # remove the disk entry entirely
        assert cache.get(key) == {"v": 1}  # still answered by the memo
        assert cache.memo_hits == 1
        assert cache.memo_misses == 0

    def test_get_populates_memo(self, tmp_path):
        key = "ab" + "7" * 62
        ResultsCache(tmp_path).put(key, {"v": 2})
        cache = ResultsCache(tmp_path)  # fresh instance, cold memo
        assert cache.get(key) == {"v": 2}
        assert (cache.memo_hits, cache.memo_misses) == (0, 1)
        assert cache.get(key) == {"v": 2}
        assert (cache.memo_hits, cache.memo_misses) == (1, 1)

    def test_contains_consults_memo(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "ab" + "8" * 62
        cache.put(key, {"v": 3})
        cache.path(key).unlink()
        assert key in cache

    def test_lru_eviction_at_capacity(self, tmp_path):
        cache = ResultsCache(tmp_path, memo_entries=2)
        keys = [f"{i:02d}" + "9" * 62 for i in range(3)]
        for i, key in enumerate(keys[:2]):
            cache.put(key, {"i": i})
        cache.get(keys[0])  # refresh key 0: key 1 becomes LRU
        cache.put(keys[2], {"i": 2})  # evicts key 1
        assert keys[1] not in cache._memo
        assert keys[0] in cache._memo and keys[2] in cache._memo
        # The evicted key still resolves from disk (memo miss).
        misses = cache.memo_misses
        assert cache.get(keys[1]) == {"i": 1}
        assert cache.memo_misses == misses + 1

    def test_memo_entries_zero_disables(self, tmp_path):
        cache = ResultsCache(tmp_path, memo_entries=0)
        key = "ab" + "a" * 62
        cache.put(key, {"v": 4})
        assert cache._memo == {}
        assert cache.get(key) == {"v": 4}
        assert cache.memo_hits == 0
        assert cache.memo_misses == 1
        cache.path(key).unlink()
        assert cache.get(key) is None  # nothing cached in-process

    def test_corrupt_entry_not_memoized(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "aa" + "b" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"truncated": ')
        assert cache.get(key) is None
        assert key not in cache._memo


def _hammer_put(args):
    """Concurrent-writer worker: repeatedly write distinct records under
    one shared key (module-level so it crosses the process pool)."""
    root, key, writer, n = args
    cache = ResultsCache(root)
    for i in range(n):
        cache.put(key, {"writer": writer, "i": i, "pad": "x" * 512})
    return writer


class TestConcurrentWriters:
    KEY = "ab" + "5" * 62

    def test_same_key_puts_from_many_processes_never_corrupt(self, tmp_path):
        """Regression: racing same-key writers must never leave a
        corrupt/partial entry — every read during and after the storm
        parses and equals one of the written records."""
        from concurrent.futures import ProcessPoolExecutor

        cache = ResultsCache(tmp_path)
        writers = 4
        with ProcessPoolExecutor(max_workers=writers) as pool:
            futures = [
                pool.submit(_hammer_put, (str(tmp_path), self.KEY, w, 25))
                for w in range(writers)
            ]
            # Read continuously until every writer has finished, so the
            # probes genuinely overlap the write storm.
            while not all(f.done() for f in futures):
                record = cache.get(self.KEY)
                if record is not None:
                    assert set(record) == {"writer", "i", "pad"}
            assert sorted(f.result() for f in futures) == list(range(writers))
        final = cache.get(self.KEY)
        assert final is not None and final["writer"] in range(writers)
        # The O_EXCL per-writer temp names never collide into leftovers.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_same_key_puts_from_many_threads(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        cache = ResultsCache(tmp_path)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(
                pool.map(
                    lambda w: _hammer_put((str(tmp_path), self.KEY, w, 25)),
                    range(8),
                )
            )
        assert cache.get(self.KEY) is not None
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_interrupted_write_leaves_no_entry(self, tmp_path):
        class Unserializable:
            pass

        import pytest as _pytest

        cache = ResultsCache(tmp_path)
        with _pytest.raises(TypeError):
            cache.put(self.KEY, {"bad": Unserializable()})
        assert cache.get(self.KEY) is None
        assert list(tmp_path.rglob("*.tmp")) == []
