"""Content-addressed results cache (``repro.experiments.cache``)."""

from repro.experiments import (
    ResultsCache,
    cell_key,
    combine_digests,
    instance_digest,
    solver_digest,
)
from repro.generators import small_random_problem


class TestDigests:
    def test_equal_instances_hash_equal(self):
        assert instance_digest(small_random_problem(1)) == instance_digest(
            small_random_problem(1)
        )

    def test_different_instances_hash_different(self):
        assert instance_digest(small_random_problem(1)) != instance_digest(
            small_random_problem(2)
        )

    def test_solver_digest_ignores_name(self):
        a = {"name": "fast", "objective": "period", "method": "auto"}
        b = {"name": "renamed", "objective": "period", "method": "auto"}
        c = {"name": "fast", "objective": "latency", "method": "auto"}
        assert solver_digest(a) == solver_digest(b)
        assert solver_digest(a) != solver_digest(c)

    def test_cell_key_is_combine_of_the_two_digests(self):
        # The runner precomputes the digests and combines them itself;
        # this pins the two paths to the same key format.
        problem = small_random_problem(1)
        solver = {"name": "a", "objective": "period"}
        assert cell_key(problem, solver) == combine_digests(
            instance_digest(problem), solver_digest(solver)
        )

    def test_cell_key_depends_on_both_parts(self):
        p1, p2 = small_random_problem(1), small_random_problem(2)
        s1 = {"name": "a", "objective": "period"}
        s2 = {"name": "a", "objective": "latency"}
        keys = {
            cell_key(p1, s1),
            cell_key(p1, s2),
            cell_key(p2, s1),
            cell_key(p2, s2),
        }
        assert len(keys) == 4


class TestResultsCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultsCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert "0" * 64 not in cache

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "ab" + "0" * 62
        record = {"status": "ok", "objective": 1.5}
        cache.put(key, record)
        assert key in cache
        assert cache.get(key) == record
        assert list(cache.keys()) == [key]
        assert len(cache) == 1

    def test_two_level_fanout(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {})
        assert cache.path(key) == tmp_path / "cd" / f"{key}.json"
        assert cache.path(key).exists()

    def test_overwrite(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultsCache(tmp_path)
        key = "aa" + "3" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"truncated": ')  # simulates a pre-atomic crash
        assert cache.get(key) is None
        assert not path.exists()

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultsCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "4" * 62, {"i": i})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_empty_cache_iterates_nothing(self, tmp_path):
        cache = ResultsCache(tmp_path / "never-created")
        assert list(cache.keys()) == []
        assert len(cache) == 0
