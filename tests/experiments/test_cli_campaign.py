"""End-to-end ``repro-pipelines campaign`` CLI tests.

Covers the acceptance criterion: the shipped example spec (2 platform
classes x 2 communication models x 2 solvers) runs end-to-end through
``campaign run``, and an immediate rerun completes from cache with zero
re-solves.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLE_SPEC = REPO_ROOT / "examples" / "campaign_small.yaml"


@pytest.fixture
def spec_file(tmp_path):
    """A JSON copy of the example grid (works without PyYAML)."""
    payload = {
        "name": "cli-sweep",
        "scenarios": {
            "platforms": ["fully-homogeneous", "comm-homogeneous"],
            "models": ["overlap", "no-overlap"],
            "seeds": 2,
        },
        "solvers": [
            {"name": "registry", "objective": "period"},
            {"name": "greedy", "objective": "period", "method": "heuristic"},
        ],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return path


class TestCampaignRun:
    def test_run_then_rerun_zero_resolves(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["campaign", "run", str(spec_file), "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "0 cached + 16 solved" in out
        assert "16 ok" in out

        assert main(["campaign", "run", str(spec_file), "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "16 cached + 0 solved" in out

    def test_example_yaml_spec_end_to_end(self, tmp_path, capsys):
        pytest.importorskip("yaml")
        cache_dir = str(tmp_path / "cache")
        assert (
            main(
                ["campaign", "run", str(EXAMPLE_SPEC), "--dir", cache_dir, "--quiet"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 cached + 36 solved" in out
        assert (
            main(
                ["campaign", "run", str(EXAMPLE_SPEC), "--dir", cache_dir, "--quiet"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "36 cached + 0 solved" in out  # zero re-solves

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x"}))
        with pytest.raises(SystemExit) as err:
            main(["campaign", "run", str(bad)])
        assert err.value.code == 2
        assert "scenarios" in capsys.readouterr().err


class TestCampaignStatus:
    def test_status_before_and_after(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["campaign", "status", str(spec_file), "--dir", cache_dir]) == 1
        out = capsys.readouterr().out
        assert "0/16" in out
        main(["campaign", "run", str(spec_file), "--dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "status", str(spec_file), "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "16/16" in out and "0 missing" in out


class TestCampaignReport:
    def test_report_tables(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["campaign", "run", str(spec_file), "--dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "report", str(spec_file), "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "aggregates" in out
        assert "mean objective" in out
        assert "geomean vs registry" in out  # paired solver comparison

    def test_report_custom_grouping_and_baseline(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["campaign", "run", str(spec_file), "--dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert (
            main(
                [
                    "campaign",
                    "report",
                    str(spec_file),
                    "--dir",
                    cache_dir,
                    "--by",
                    "solver",
                    "--baseline",
                    "greedy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "geomean vs greedy" in out

    def test_report_unknown_group_key(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["campaign", "run", str(spec_file), "--dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert (
            main(
                [
                    "campaign",
                    "report",
                    str(spec_file),
                    "--dir",
                    cache_dir,
                    "--by",
                    "flavor",
                ]
            )
            == 2
        )
        assert "unknown group key" in capsys.readouterr().err

    def test_report_unknown_baseline_exits_2(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["campaign", "run", str(spec_file), "--dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert (
            main(
                [
                    "campaign",
                    "report",
                    str(spec_file),
                    "--dir",
                    cache_dir,
                    "--baseline",
                    "typo",
                ]
            )
            == 2
        )
        assert "not in records" in capsys.readouterr().err

    def test_report_without_results(self, spec_file, tmp_path, capsys):
        assert (
            main(
                [
                    "campaign",
                    "report",
                    str(spec_file),
                    "--dir",
                    str(tmp_path / "empty"),
                ]
            )
            == 1
        )
        assert "no cached results" in capsys.readouterr().err
