"""Campaign spec parsing and validation (``repro.experiments.spec``)."""

import json

import pytest

from repro.core.types import CommunicationModel, MappingRule, PlatformClass
from repro.experiments import (
    CampaignSpec,
    CampaignSpecError,
    ScenarioGrid,
    SolverSpec,
    load_spec,
)

MINIMAL = {
    "name": "mini",
    "scenarios": {"platforms": ["fully-homogeneous"]},
    "solvers": [{"name": "registry"}],
}


def spec_dict(**overrides):
    payload = {
        "name": "sweep",
        "scenarios": {
            "platforms": ["fully-homogeneous", "comm-homogeneous"],
            "models": ["overlap", "no-overlap"],
            "seeds": 2,
        },
        "solvers": [
            {"name": "registry", "objective": "period"},
            {"name": "greedy", "objective": "period", "method": "heuristic"},
        ],
    }
    payload.update(overrides)
    return payload


class TestParsing:
    def test_minimal_defaults(self):
        spec = CampaignSpec.from_dict(MINIMAL)
        assert spec.name == "mini"
        assert spec.grid.models == (CommunicationModel.OVERLAP,)
        assert spec.grid.rules == (MappingRule.INTERVAL,)
        assert spec.grid.apps == (2,)
        assert spec.grid.seeds == (0,)
        assert spec.solvers[0].objective == "period"
        assert spec.solvers[0].method == "registry"
        assert spec.n_cells == 1

    def test_cross_product_counts(self):
        spec = CampaignSpec.from_dict(spec_dict())
        assert len(spec.grid) == 2 * 2 * 2
        assert spec.n_cells == 8 * 2
        assert len(spec.scenarios()) == 8
        assert len(spec.cells()) == 16

    def test_seeds_explicit_list(self):
        payload = spec_dict()
        payload["scenarios"]["seeds"] = [3, 7]
        spec = CampaignSpec.from_dict(payload)
        assert spec.grid.seeds == (3, 7)

    def test_scenario_order_deterministic(self):
        spec = CampaignSpec.from_dict(spec_dict())
        assert spec.scenarios() == spec.scenarios()

    def test_to_dict_round_trip(self):
        spec = CampaignSpec.from_dict(spec_dict())
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_scenario_problem_is_deterministic(self):
        scenario = CampaignSpec.from_dict(spec_dict()).scenarios()[0]
        from repro.io import problem_to_dict

        assert problem_to_dict(scenario.problem()) == problem_to_dict(
            scenario.problem()
        )

    def test_solver_thresholds(self):
        solver = SolverSpec.from_dict(
            {"name": "e", "objective": "energy", "max_period": 5}
        )
        thresholds = solver.thresholds()
        assert thresholds is not None and thresholds.period == 5.0
        assert SolverSpec.from_dict({"name": "p"}).thresholds() is None


class TestValidationErrors:
    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.pop("name"), "name"),
            (lambda d: d.pop("scenarios"), "scenarios"),
            (lambda d: d.pop("solvers"), "solvers"),
            (lambda d: d.update(extra=1), "unknown key"),
            (lambda d: d.update(solvers=[]), "must not be empty"),
            (lambda d: d["scenarios"].update(platforms=[]), "must not be empty"),
            (lambda d: d["scenarios"].update(platforms=["mars"]), "invalid value"),
            (lambda d: d["scenarios"].update(bogus=[1]), "unknown key"),
            (lambda d: d["scenarios"].update(seeds=0), ">= 1"),
            (lambda d: d["scenarios"].update(apps=["two"]), "ints"),
            (lambda d: d["scenarios"].update(stage_range=[4, 2]), "stage_range"),
            (lambda d: d["scenarios"].update(models="overlap"), "must be a list"),
        ],
    )
    def test_malformed_spec(self, mutate, fragment):
        payload = spec_dict()
        mutate(payload)
        with pytest.raises(CampaignSpecError) as err:
            CampaignSpec.from_dict(payload)
        assert fragment in str(err.value)

    @pytest.mark.parametrize(
        "solver, fragment",
        [
            ({}, "name"),
            ({"name": ""}, "name"),
            ({"name": "x", "objective": "speed"}, "unknown objective"),
            ({"name": "x", "method": "magic"}, "unknown method"),
            ({"name": "x", "objective": "energy"}, "max_period"),
            ({"name": "x", "max_period": -1}, "positive"),
            ({"name": "x", "max_period": "soon"}, "number"),
            ({"name": "x", "surprise": 1}, "unknown key"),
        ],
    )
    def test_malformed_solver(self, solver, fragment):
        with pytest.raises(CampaignSpecError) as err:
            SolverSpec.from_dict(solver)
        assert fragment in str(err.value)

    def test_duplicate_solver_names(self):
        payload = spec_dict()
        payload["solvers"] = [{"name": "same"}, {"name": "same"}]
        with pytest.raises(CampaignSpecError, match="duplicate"):
            CampaignSpec.from_dict(payload)

    def test_non_mapping_root(self):
        with pytest.raises(CampaignSpecError, match="mapping"):
            CampaignSpec.from_dict(["not", "a", "dict"])  # type: ignore[arg-type]

    def test_grid_requires_platforms(self):
        with pytest.raises(CampaignSpecError, match="platforms"):
            ScenarioGrid.from_dict({})


class TestStrategyAndBudgetKeys:
    def solver(self, **entry):
        entry.setdefault("name", "s")
        return SolverSpec.from_dict(entry)

    def test_strategy_entry_parses(self):
        solver = self.solver(strategy="portfolio(greedy,local_search)")
        assert solver.strategy == "portfolio(greedy,local_search)"
        assert solver.budget is None

    def test_budget_entry_parses(self):
        solver = self.solver(
            strategy="annealing",
            budget={"time_limit": 0.5, "max_evaluations": 100, "seed": 3},
        )
        assert solver.budget.time_limit == 0.5
        assert solver.budget.max_evaluations == 100
        assert solver.budget.seed == 3

    def test_round_trip(self):
        solver = self.solver(
            strategy="portfolio(greedy,annealing)",
            budget={"max_evaluations": 500, "seed": 1},
        )
        assert SolverSpec.from_dict(solver.to_dict()) == solver

    def test_method_and_strategy_both_rejected(self):
        with pytest.raises(CampaignSpecError, match="not both"):
            self.solver(method="heuristic", strategy="annealing")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(CampaignSpecError, match="invalid strategy"):
            self.solver(strategy="quantum_annealing")

    def test_malformed_composite_rejected(self):
        with pytest.raises(CampaignSpecError, match="invalid strategy"):
            self.solver(strategy="portfolio(greedy")

    def test_empty_strategy_rejected(self):
        with pytest.raises(CampaignSpecError, match="non-empty"):
            self.solver(strategy="")

    @pytest.mark.parametrize(
        "budget",
        [
            {"time_limit": -1},
            {"max_evaluations": 0},
            {"seed": "x"},
            {"nonsense": 1},
            "fast",
        ],
    )
    def test_bad_budgets_rejected(self, budget):
        with pytest.raises(CampaignSpecError, match="invalid budget"):
            self.solver(strategy="greedy", budget=budget)

    def test_legacy_entries_unchanged(self):
        """Old method-only entries keep the same dict form (and hence
        the same cache digests)."""
        solver = self.solver(objective="period", method="heuristic")
        assert solver.to_dict() == {
            "name": "s",
            "objective": "period",
            "method": "heuristic",
        }

    def test_campaign_with_strategy_solver(self):
        payload = spec_dict(
            solvers=[
                {"name": "registry", "objective": "period"},
                {
                    "name": "racer",
                    "objective": "period",
                    "strategy": "portfolio(greedy,local_search)",
                    "budget": {"max_evaluations": 1000, "seed": 0},
                },
            ]
        )
        spec = CampaignSpec.from_dict(payload)
        assert spec.solvers[1].strategy == "portfolio(greedy,local_search)"
        assert CampaignSpec.from_dict(spec.to_dict()) == spec


class TestLoadSpec:
    def test_dict_passthrough(self):
        assert load_spec(MINIMAL).name == "mini"

    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_dict()))
        assert load_spec(path).n_cells == 16

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(spec_dict()))
        assert load_spec(path).n_cells == 16

    def test_example_spec_parses(self):
        pytest.importorskip("yaml")
        from pathlib import Path

        example = Path(__file__).resolve().parents[2] / "examples" / "campaign_small.yaml"
        spec = load_spec(example)
        assert len(spec.grid.platforms) >= 2
        assert len(spec.grid.models) >= 2
        assert len(spec.solvers) >= 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="not found"):
            load_spec(tmp_path / "nope.yaml")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CampaignSpecError, match="invalid JSON"):
            load_spec(path)

    def test_platform_enum_values_used_in_docs_exist(self):
        # The spec format documented in docs/campaigns.md names these.
        assert {p.value for p in PlatformClass} >= {
            "fully-homogeneous",
            "comm-homogeneous",
        }
