"""Tests for the Pareto-front analysis tools."""

import pytest

from repro import Criterion, EnergyModel, Thresholds
from repro.analysis import (
    pareto_filter,
    period_energy_front_exact,
    period_energy_front_heuristic,
)
from repro.generators import small_random_problem
from repro.paper import FIGURE1_EXPECTED, figure1_problem


class TestParetoFilter:
    def test_removes_dominated(self):
        points = [(1.0, 5.0), (2.0, 2.0), (3.0, 3.0), (5.0, 1.0)]
        front = pareto_filter(points)
        assert (3.0, 3.0) not in front
        assert front == [(1.0, 5.0), (2.0, 2.0), (5.0, 1.0)]

    def test_deduplicates(self):
        assert pareto_filter([(1.0, 1.0), (1.0, 1.0)]) == [(1.0, 1.0)]

    def test_all_incomparable_kept(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert pareto_filter(points) == points

    def test_three_dimensions(self):
        points = [(1.0, 1.0, 5.0), (1.0, 1.0, 4.0), (2.0, 0.5, 6.0)]
        front = pareto_filter(points)
        assert (1.0, 1.0, 5.0) not in front
        assert len(front) == 2

    def test_empty(self):
        assert pareto_filter([]) == []


class TestFigure1Front:
    def test_front_contains_paper_trade_off_points(self):
        """The Section 2 worked example is three points of the exact
        period/energy Pareto front of the Figure 1 instance."""
        problem = figure1_problem()
        front = period_energy_front_exact(problem)
        as_dict = {t: e for t, e in front}
        # Period 1 at energy 136 (Equation (1) mapping).
        assert as_dict.get(FIGURE1_EXPECTED["optimal_period"]) == pytest.approx(
            FIGURE1_EXPECTED["optimal_period_energy"]
        )
        # Period 2 at energy 46 (the paper's compromise).
        assert as_dict.get(
            FIGURE1_EXPECTED["compromise_period"]
        ) == pytest.approx(FIGURE1_EXPECTED["compromise_energy"])
        # Period 14 at the global energy floor 10.
        assert min(e for _, e in front) == pytest.approx(
            FIGURE1_EXPECTED["min_energy"]
        )

    def test_front_is_monotone(self):
        problem = figure1_problem()
        front = period_energy_front_exact(problem)
        # Sorted by period, energies must strictly decrease.
        energies = [e for _, e in front]
        assert all(a > b for a, b in zip(energies, energies[1:]))


class TestHeuristicFront:
    def test_heuristic_front_dominated_by_exact(self):
        problem = small_random_problem(4, n_modes=2, stage_range=(1, 3))
        from repro.algorithms import minimize_period_interval

        start = minimize_period_interval(problem)
        heur = period_energy_front_heuristic(problem, start, n_points=8)
        exact = period_energy_front_exact(problem)
        # Every heuristic point is weakly dominated by some exact point.
        for t_h, e_h in heur:
            assert any(
                t_e <= t_h * (1 + 1e-9) and e_e <= e_h * (1 + 1e-9)
                for t_e, e_e in exact
            )
