"""Tests for the empirical complexity-fitting helpers."""

import time

import pytest

from repro.analysis import fit_power_law, measure_scaling


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        sizes = [10, 20, 40, 80]
        times = [s**2 * 1e-6 for s in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear_with_coefficient(self):
        sizes = [1, 2, 4, 8]
        times = [3.0 * s for s in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.coefficient == pytest.approx(3.0)

    def test_noise_tolerated(self):
        import numpy as np

        rng = np.random.default_rng(0)
        sizes = [2**k for k in range(4, 12)]
        times = [s**1.5 * float(rng.uniform(0.9, 1.1)) for s in sizes]
        fit = fit_power_law(sizes, times)
        assert 1.3 < fit.exponent < 1.7

    def test_insufficient_samples(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [1.0])

    def test_non_positive_dropped(self):
        fit = fit_power_law([1, 2, 4, 0], [1.0, 2.0, 4.0, 0.0])
        assert fit.exponent == pytest.approx(1.0)


class TestMeasureScaling:
    def test_measures_each_size(self):
        calls = []

        def make(n):
            return n

        def solve(n):
            calls.append(n)

        sizes, times = measure_scaling(make, solve, [1, 2, 3], repeats=2)
        assert sizes == [1, 2, 3]
        assert len(times) == 3
        assert calls == [1, 1, 2, 2, 3, 3]
        assert all(t >= 0 for t in times)

    def test_detects_growth(self):
        def make(n):
            return n

        def solve(n):
            # Busy loop proportional to n^2.
            total = 0
            for i in range(n * n):
                total += i
            return total

        sizes, times = measure_scaling(
            make, solve, [50, 100, 200, 400], repeats=3
        )
        fit = fit_power_law(sizes, times)
        assert fit.exponent > 1.0  # clearly super-linear
