"""Tests for the max-stretch workflow (Section 3.4 / Theorems 7, 11)."""

import math

import pytest

from repro import (
    Application,
    Criterion,
    MappingRule,
    Platform,
    ProblemInstance,
)
from repro.algorithms import minimize_period_interval
from repro.algorithms.exact import exact_minimize
from repro.analysis import solo_optima, solo_optimum, stretch_problem
from repro.generators import random_applications, rng_from


@pytest.fixture
def hom_problem():
    rng = rng_from(4)
    apps = random_applications(rng, 2, stage_range=(2, 3))
    platform = Platform.fully_homogeneous(5, speeds=[2.0], bandwidth=1.5)
    return ProblemInstance(apps=apps, platform=platform)


class TestSoloOptima:
    def test_solo_period_matches_single_app_solve(self, hom_problem):
        for a in range(hom_problem.n_apps):
            solo = ProblemInstance(
                apps=(hom_problem.apps[a],),
                platform=hom_problem.platform,
            )
            expected = exact_minimize(solo, Criterion.PERIOD).objective
            got = solo_optimum(hom_problem, a, Criterion.PERIOD)
            # Solo optimum is unweighted even if the app carries a weight.
            assert got == pytest.approx(expected / hom_problem.apps[a].weight)

    def test_solo_latency(self, hom_problem):
        values = solo_optima(hom_problem, Criterion.LATENCY)
        assert len(values) == 2
        assert all(math.isfinite(v) and v > 0 for v in values)

    def test_energy_rejected(self, hom_problem):
        from repro import SolverError

        with pytest.raises(SolverError):
            solo_optimum(hom_problem, 0, Criterion.ENERGY)

    def test_works_on_heterogeneous_platform(self):
        rng = rng_from(9)
        apps = random_applications(rng, 2, stage_range=(1, 2))
        platform = Platform.comm_homogeneous([[1.0], [3.0], [2.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        values = solo_optima(problem, Criterion.LATENCY)
        assert all(math.isfinite(v) for v in values)

    def test_one_to_one_rule(self):
        rng = rng_from(10)
        apps = random_applications(rng, 2, stage_range=(1, 2))
        total = sum(a.n_stages for a in apps)
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 3))] for _ in range(total + 1)]
        )
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        values = solo_optima(problem, Criterion.PERIOD)
        assert all(math.isfinite(v) for v in values)


class TestStretchProblem:
    def test_weights_are_inverse_optima(self, hom_problem):
        stretched, optima = stretch_problem(hom_problem, Criterion.PERIOD)
        for app, opt in zip(stretched.apps, optima):
            assert app.weight == pytest.approx(1.0 / opt)

    def test_stretch_at_least_one(self, hom_problem):
        """Concurrent execution can never beat solo execution, so the
        optimal max-stretch is >= 1."""
        stretched, _ = stretch_problem(hom_problem, Criterion.PERIOD)
        solution = minimize_period_interval(stretched)
        assert solution.objective >= 1.0 - 1e-9

    def test_stretch_objective_interpretation(self, hom_problem):
        """The weighted objective equals max_a T_a / T*_a."""
        stretched, optima = stretch_problem(hom_problem, Criterion.PERIOD)
        solution = minimize_period_interval(stretched)
        manual = max(
            solution.values.periods[a] / optima[a]
            for a in range(stretched.n_apps)
        )
        assert solution.objective == pytest.approx(manual)

    def test_identical_apps_get_equal_stretch(self):
        """Symmetric instance: both identical applications should see the
        same slowdown under the stretch objective (Theorem 7's setting)."""
        apps = (
            Application.homogeneous(4, work=2.0),
            Application.homogeneous(4, work=2.0),
        )
        platform = Platform.fully_homogeneous(4, speeds=[1.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        stretched, optima = stretch_problem(problem, Criterion.PERIOD)
        assert optima[0] == pytest.approx(optima[1])
        solution = minimize_period_interval(stretched)
        s0 = solution.values.periods[0] / optima[0]
        s1 = solution.values.periods[1] / optima[1]
        assert s0 == pytest.approx(s1)
