"""Campaign reporting layer (``repro.analysis.campaigns``)."""

import pytest

from repro.analysis import (
    campaign_table,
    front_quality,
    heuristic_front_quality,
    solver_ratio_table,
)
from repro.experiments import CampaignSpec, run_campaign
from repro.generators import small_random_problem


@pytest.fixture(scope="module")
def records(tmp_path_factory):
    spec = CampaignSpec.from_dict(
        {
            "name": "analysis-sweep",
            "scenarios": {
                "platforms": ["fully-homogeneous", "comm-homogeneous"],
                "models": ["overlap", "no-overlap"],
                "seeds": 2,
            },
            "solvers": [
                {"name": "registry", "objective": "period"},
                {"name": "greedy", "objective": "period", "method": "heuristic"},
            ],
        }
    )
    return run_campaign(spec, tmp_path_factory.mktemp("cache")).records


class TestCampaignTable:
    def test_default_grouping(self, records):
        headers, rows = campaign_table(records)
        assert headers[:3] == ["platform", "model", "solver"]
        assert len(rows) == 2 * 2 * 2  # platforms x models x solvers
        # each group holds one cell per seed
        assert all(row[3] == 2 for row in rows)

    def test_group_by_solver_only(self, records):
        headers, rows = campaign_table(records, by=("solver",))
        assert [r[0] for r in rows] == ["greedy", "registry"]
        assert all(row[1] == 8 for row in rows)

    def test_numeric_axes_sort_numerically(self):
        import types

        def fake_record(apps):
            scenario = types.SimpleNamespace(axes=lambda: {"apps": apps})
            return types.SimpleNamespace(
                scenario=scenario,
                solver=types.SimpleNamespace(name="s", objective="period"),
                ok=True,
                objective=1.0,
                wall_time=0.0,
                cached=False,
            )

        _, rows = campaign_table(
            [fake_record(2), fake_record(10), fake_record(3)], by=("apps",)
        )
        assert [r[0] for r in rows] == [2, 3, 10]  # not ["10", "2", "3"]

    def test_unknown_key_raises(self, records):
        with pytest.raises(ValueError, match="unknown group key"):
            campaign_table(records, by=("flavor",))


class TestSolverRatios:
    def test_paired_counts(self, records):
        headers, rows = solver_ratio_table(records, baseline="registry")
        assert headers[2] == "geomean vs registry"
        (row,) = rows
        assert row[0] == "greedy"
        assert row[1] == 8  # all scenarios paired
        assert row[3] + row[4] + row[5] == 8  # wins + ties + losses

    def test_heuristic_never_beats_optimal_period(self, records):
        # registry dispatch is optimal on these polynomial cells, so the
        # heuristic's paired ratio is >= 1 (no wins against the optimum).
        _, rows = solver_ratio_table(records, baseline="registry")
        (row,) = rows
        assert row[3] == 0  # wins
        assert float(row[2]) >= 1.0

    def test_unknown_baseline(self, records):
        with pytest.raises(ValueError, match="not in records"):
            solver_ratio_table(records, baseline="nope")

    def test_empty_records(self):
        _, rows = solver_ratio_table([])
        assert rows == []


class TestFrontQuality:
    def test_identical_fronts_are_perfect(self):
        front = [(1.0, 10.0), (2.0, 5.0), (4.0, 2.0)]
        metrics = front_quality(front, front)
        assert metrics["coverage"] == 1.0
        assert metrics["reachable"] == 1.0
        assert metrics["mean_excess"] == pytest.approx(0.0)
        assert metrics["max_excess"] == pytest.approx(0.0)

    def test_worse_front_has_positive_excess(self):
        exact = [(1.0, 10.0), (2.0, 5.0)]
        approx = [(1.0, 12.0), (2.0, 6.0)]
        metrics = front_quality(exact, approx)
        assert metrics["coverage"] == 0.0  # both points dominated
        assert metrics["mean_excess"] == pytest.approx((0.2 + 0.2) / 2)

    def test_partial_reachability(self):
        exact = [(1.0, 10.0), (2.0, 5.0)]
        approx = [(2.0, 5.0)]  # nothing feasible at period 1
        metrics = front_quality(exact, approx)
        assert metrics["reachable"] == 0.5
        assert metrics["coverage"] == 1.0

    def test_empty_approx(self):
        metrics = front_quality([(1.0, 1.0)], [])
        assert metrics["coverage"] == 0.0
        assert metrics["mean_excess"] == float("inf")

    def test_heuristic_front_quality_end_to_end(self):
        problem = small_random_problem(0, n_modes=2)
        metrics = heuristic_front_quality(problem, max_points=30, n_points=10)
        assert 0.0 <= metrics["coverage"] <= 1.0
        assert metrics["n_exact"] >= 1
        assert metrics["mean_excess"] >= 0.0


class TestStrategyTelemetryTable:
    def test_aggregates_budget_consumption(self, tmp_path):
        from repro.analysis import strategy_telemetry_table

        spec = CampaignSpec.from_dict(
            {
                "name": "telemetry-sweep",
                "scenarios": {"platforms": ["fully-heterogeneous"], "seeds": 2},
                "solvers": [
                    {"name": "plain", "objective": "period", "method": "heuristic"},
                    {
                        "name": "racer",
                        "objective": "period",
                        "strategy": "portfolio(greedy,annealing)",
                        "budget": {"max_evaluations": 500, "seed": 0},
                    },
                ],
            }
        )
        result = run_campaign(spec, tmp_path)
        headers, rows = strategy_telemetry_table(result.records)
        assert headers[:3] == ["solver", "strategy", "cells"]
        by_name = {row[0]: row for row in rows}
        assert set(by_name) == {"plain", "racer"}
        racer = by_name["racer"]
        assert racer[1] == "portfolio(greedy,annealing)"
        assert racer[2] == 2  # cells
        assert racer[3] > 0  # total evaluations metered
        # the budgeted racer hits its 500-evaluation cap on both cells
        assert racer[5] == 2

    def test_records_without_telemetry_skipped(self):
        from repro.analysis import strategy_telemetry_table

        class FakeRecord:
            telemetry = None
            solver = None

        headers, rows = strategy_telemetry_table([FakeRecord(), FakeRecord()])
        assert rows == []
