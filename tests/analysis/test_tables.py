"""Tests for the plain-text table renderer."""

import pytest

from repro.analysis import render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bbb"], [[1, 2.0], ["xx", 3.14159]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "-+-" in lines[1]

    def test_float_formatting(self):
        out = render_table(["x"], [[3.141592653589793]])
        assert "3.142" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["h1", "h2"], [])
        assert "h1" in out and "h2" in out
