"""The anytime front engine: planner, incremental merge, hypervolume,
warm-started cells, and byte-identity with the sequential exact sweep."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Criterion, Thresholds
from repro.algorithms.exact import exact_minimize
from repro.analysis import (
    IncrementalFront,
    bisection_order,
    compute_front_anytime,
    front_thresholds,
    hypervolume_2d,
    pareto_filter,
    period_candidates_for_front,
    period_energy_front_exact,
    plan_front,
)
from repro.analysis.front_engine import cell_dispatch_method
from repro.analysis.pareto import _pareto_filter_scalar, dedupe_within_rtol
from repro.core.types import MappingRule, PlatformClass
from repro.generators import small_random_problem
from repro.paper import figure1_problem

#: Bounded positive floats keeping dominance comparisons well-conditioned.
coords = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
points_2d = st.lists(st.tuples(coords, coords), max_size=30)


def np_hard_problem(seed=0, n_apps=2):
    """An instance the energy sweep must branch-and-bound (interval rule
    on a non-fully-homogeneous platform is NP-hard per Table 2)."""
    return small_random_problem(
        seed,
        platform_class=PlatformClass.COMM_HOMOGENEOUS,
        rule=MappingRule.INTERVAL,
        n_apps=n_apps,
    )


class TestBisectionOrder:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 7, 10, 33, 100])
    def test_is_a_permutation(self, n):
        order = bisection_order(n)
        assert sorted(order) == list(range(n))

    def test_endpoints_come_first(self):
        order = bisection_order(9)
        assert order[:2] == [0, 8]
        assert order[2] == 4  # first midpoint

    def test_deterministic(self):
        assert bisection_order(17) == bisection_order(17)

    def test_prefix_spreads_over_range(self):
        # After the first 2 + 2**k entries every gap is <= n / 2**k.
        order = bisection_order(65)
        prefix = sorted(order[: 2 + 1 + 2])  # endpoints + two levels
        gaps = [b - a for a, b in zip(prefix, prefix[1:])]
        assert max(gaps) <= 32


class TestVectorizedParetoFilter:
    @given(points_2d)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_reference(self, pts):
        assert pareto_filter(pts) == _pareto_filter_scalar(pts)

    @given(st.lists(st.tuples(coords, coords, coords), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_reference_3d(self, pts):
        assert pareto_filter(pts) == _pareto_filter_scalar(pts)

    def test_duplicates_and_ties(self):
        pts = [(1.0, 2.0), (1.0, 2.0), (2.0, 1.0), (1.0, 2.0)]
        assert pareto_filter(pts) == _pareto_filter_scalar(pts)

    def test_preserves_int_tuples(self):
        # The survivors are the original tuples, not float copies.
        front = pareto_filter([(1, 5), (2, 2), (3, 3)])
        assert front == [(1, 5), (2, 2)]
        assert all(isinstance(c, int) for p in front for c in p)

    def test_ragged_input_falls_back(self):
        pts = [(1.0, 2.0), (1.0, 2.0, 3.0)]
        assert pareto_filter(pts) == _pareto_filter_scalar(pts)


class TestCandidateDedup:
    def test_dedupe_within_rtol(self):
        vals = [1.0, 1.0 + 1e-12, 1.0 + 1e-6, 2.0, 2.0 * (1 + 1e-10)]
        assert dedupe_within_rtol(vals, rtol=1e-9) == [1.0, 1.0 + 1e-6, 2.0]

    def test_empty(self):
        assert dedupe_within_rtol([]) == []

    def test_candidates_have_relative_gaps(self):
        candidates = period_candidates_for_front(np_hard_problem(0))
        assert candidates == sorted(candidates)
        for a, b in zip(candidates, candidates[1:]):
            assert b > a * (1 + 1e-9)

    def test_plan_shared_with_exact_sweep(self):
        problem = np_hard_problem(1)
        thresholds, order = plan_front(problem, max_points=25)
        assert thresholds == front_thresholds(problem, max_points=25)
        assert sorted(order) == list(range(len(thresholds)))


class TestIncrementalFront:
    @given(points_2d)
    @settings(max_examples=200, deadline=None)
    def test_any_arrival_order_equals_batch_filter(self, pts):
        front = IncrementalFront()
        for p in pts:
            front.add(p)
        assert front.front() == pareto_filter(pts)

    @given(points_2d, st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_order_invariance(self, pts, rng):
        shuffled = list(pts)
        rng.shuffle(shuffled)
        a, b = IncrementalFront(), IncrementalFront()
        for p in pts:
            a.add(p)
        for p in shuffled:
            b.add(p)
        assert a.front() == b.front()

    @given(points_2d)
    @settings(max_examples=100, deadline=None)
    def test_hypervolume_monotone_as_results_land(self, pts):
        front = IncrementalFront()
        last = 0.0
        for p in pts:
            front.add(p)
            hv = front.hypervolume()
            assert hv >= last - 1e-12 * max(1.0, abs(last))
            last = hv

    def test_add_reports_front_changes(self):
        front = IncrementalFront()
        assert front.add((2.0, 2.0))
        assert not front.add((3.0, 3.0))  # dominated
        assert not front.add((2.0, 2.0))  # duplicate
        assert front.add((1.0, 3.0))  # incomparable
        assert front.add((0.5, 0.5))  # dominates everything
        assert front.front() == [(0.5, 0.5)]


class TestHypervolume:
    def test_hand_example(self):
        # Staircase vs ref (4, 4): (1,3) adds 3*1, (2,2) adds 2*1,
        # (3,1) adds 1*1.
        pts = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert hypervolume_2d(pts, (4.0, 4.0)) == pytest.approx(6.0)

    def test_dominated_points_add_nothing(self):
        base = hypervolume_2d([(1.0, 1.0)], (4.0, 4.0))
        assert hypervolume_2d(
            [(1.0, 1.0), (2.0, 2.0)], (4.0, 4.0)
        ) == pytest.approx(base)

    def test_points_outside_ref_add_nothing(self):
        assert hypervolume_2d([(5.0, 1.0)], (4.0, 4.0)) == 0.0
        assert hypervolume_2d([], (4.0, 4.0)) == 0.0

    @given(points_2d, st.tuples(coords, coords))
    @settings(max_examples=100, deadline=None)
    def test_monotone_under_adding_points_fixed_ref(self, pts, ref):
        hv = 0.0
        for i in range(len(pts)):
            nxt = hypervolume_2d(pts[: i + 1], ref)
            assert nxt >= hv - 1e-12 * max(1.0, abs(hv))
            hv = nxt


class TestWarmStartedExact:
    def test_warm_bound_returns_identical_solution(self):
        problem = np_hard_problem(0)
        thresholds = Thresholds(period=front_thresholds(problem)[-1])
        cold = exact_minimize(problem, Criterion.ENERGY, thresholds)
        for bound in (cold.objective, cold.objective * 1.5):
            warm = exact_minimize(
                problem, Criterion.ENERGY, thresholds, upper_bound=bound
            )
            assert warm.mapping == cold.mapping
            assert warm.values == cold.values
            assert warm.objective == cold.objective

    def test_warm_bound_prunes_nodes(self):
        problem = np_hard_problem(3, n_apps=3)
        thresholds = Thresholds(period=front_thresholds(problem)[-1])
        cold = exact_minimize(problem, Criterion.ENERGY, thresholds)
        warm = exact_minimize(
            problem,
            Criterion.ENERGY,
            thresholds,
            upper_bound=cold.objective,
        )
        assert warm.stats["nodes"] <= cold.stats["nodes"]

    def test_unachievable_bound_reports_infeasible(self):
        from repro.core.exceptions import InfeasibleProblemError

        problem = np_hard_problem(0)
        thresholds = Thresholds(period=front_thresholds(problem)[-1])
        with pytest.raises(InfeasibleProblemError):
            exact_minimize(
                problem, Criterion.ENERGY, thresholds, upper_bound=1e-9
            )


class TestAnytimeByteIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_np_hard_grid_matches_exact_sweep(self, seed):
        problem = np_hard_problem(seed)
        assert cell_dispatch_method(problem) == "exact"
        exact = period_energy_front_exact(problem, max_points=30)
        result = compute_front_anytime(problem, max_points=30)
        assert result.front == exact

    def test_polynomial_cells_match_exact_sweep(self):
        problem = small_random_problem(
            0,
            platform_class=PlatformClass.FULLY_HOMOGENEOUS,
            rule=MappingRule.INTERVAL,
            n_apps=2,
        )
        assert cell_dispatch_method(problem) == "auto"
        assert compute_front_anytime(
            problem, max_points=30
        ).front == period_energy_front_exact(problem, max_points=30)

    def test_figure1_front(self):
        problem = figure1_problem()
        assert compute_front_anytime(
            problem
        ).front == period_energy_front_exact(problem)

    def test_cold_run_matches_too(self):
        problem = np_hard_problem(1)
        warm = compute_front_anytime(problem, max_points=20)
        cold = compute_front_anytime(
            problem, max_points=20, warm_start=False
        )
        assert warm.front == cold.front
        assert warm.n_warm > 0 and cold.n_warm == 0

    def test_events_cover_every_cell(self):
        problem = np_hard_problem(2)
        result = compute_front_anytime(problem, max_points=20)
        assert len(result.events) == result.n_cells == len(result.thresholds)
        assert [e.elapsed for e in result.events] == sorted(
            e.elapsed for e in result.events
        )

    def test_hypervolume_trajectory_monotone(self):
        problem = np_hard_problem(0)
        result = compute_front_anytime(problem, max_points=20)
        lo_p = min(p for p, _ in result.front)
        lo_e = min(e for _, e in result.front)
        hi_p = max(p for p, _ in result.front)
        hi_e = max(e for _, e in result.front)
        ref = (hi_p * 1.01 + 1e-9, hi_e * 1.01 + 1e-9)
        curve = result.hypervolume_trajectory(ref)
        values = [hv for _, hv in curve]
        assert values == sorted(values)
        assert values[-1] >= (ref[0] - lo_p) * 0.0  # final hv is defined
        assert math.isfinite(values[-1])

    def test_parallel_workers_match(self):
        problem = np_hard_problem(0)
        sequential = compute_front_anytime(problem, max_points=15)
        parallel = compute_front_anytime(
            problem, max_points=15, workers=2
        )
        assert parallel.front == sequential.front
