"""Wall-clock regression guard for the batched neighborhood engine.

``benchmarks/BENCH_neighborhood.json`` records, next to the speedup
table, a ``guard`` block: the batched hill-climb wall-clock on a fixed
reference instance plus a machine-calibration time (a fixed NumPy +
Python workload).  This test replays the reference instance and fails
when the batched engine has regressed to more than 1.5x the recorded
wall-clock -- after rescaling the recorded baseline by the calibration
ratio, so a slower CI machine moves the bar instead of tripping it.

Skipped when the baseline JSON has not been recorded.
"""

import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.core.types import Criterion

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BASELINE = BENCH_DIR / "BENCH_neighborhood.json"

#: Allowed regression over the (rescaled) recorded batched wall-clock.
MAX_REGRESSION = 1.5

#: Noise floor: never fail on differences below this many seconds.
ABSOLUTE_FLOOR = 0.05


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_neighborhood", BENCH_DIR / "bench_neighborhood.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(
    not BASELINE.exists(),
    reason="BENCH_neighborhood.json baseline not recorded",
)
def test_hill_climb_has_not_regressed_past_recorded_baseline():
    payload = json.loads(BASELINE.read_text())
    guard = payload["guard"]
    bench = load_bench_module()

    problem = bench.build_instance(guard["seed"], tiny=guard["tiny"])
    start = greedy_interval_period(problem).mapping
    # Rescale the recorded baseline to this machine's speed.
    calibration = bench.calibrate()
    scale = calibration / guard["calibration_seconds"]

    # Warm the kernel tables, then keep the best of three runs so a
    # scheduler hiccup cannot fail the guard.
    best = float("inf")
    for attempt in range(4):
        t0 = time.perf_counter()
        solution = hill_climb(
            problem,
            start,
            Criterion.PERIOD,
            max_iterations=guard["max_iterations"],
            engine="batched",
        )
        elapsed = time.perf_counter() - t0
        if attempt > 0:  # attempt 0 is the warm-up
            best = min(best, elapsed)
    assert solution.stats["n_steps"] >= 1

    allowed = max(
        MAX_REGRESSION * guard["batched_seconds"] * scale,
        ABSOLUTE_FLOOR,
    )
    assert best <= allowed, (
        f"batched hill_climb took {best:.3f}s on the reference instance; "
        f"recorded baseline {guard['batched_seconds']:.3f}s "
        f"(calibration scale {scale:.2f}) allows at most {allowed:.3f}s"
    )
