"""Wall-clock regression guards for the neighborhood engines.

``benchmarks/BENCH_neighborhood.json`` records, next to the speedup
table, a ``guard`` block: the batched (and, when the baseline machine
had Numba, compiled) hill-climb wall-clock on a fixed reference instance
plus a machine-calibration time (a fixed NumPy + Python workload).
These tests replay the reference instance and fail when an engine has
regressed to more than 1.5x the recorded wall-clock -- after rescaling
the recorded baseline by the calibration ratio, so a slower CI machine
moves the bar instead of tripping it.  A degenerate recorded calibration
(zero, negative or non-finite) falls back to scale 1.0 rather than
dividing by zero.

Skipped when the baseline JSON has not been recorded; the compiled guard
additionally skips (with the reason) when Numba is absent here or the
baseline was recorded without it.
"""

import importlib.util
import json
import math
import time
from pathlib import Path

import pytest

from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.core.types import Criterion
from repro.kernel import compiled

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BASELINE = BENCH_DIR / "BENCH_neighborhood.json"

#: Allowed regression over the (rescaled) recorded wall-clock.
MAX_REGRESSION = 1.5

#: Noise floor: never fail on differences below this many seconds.
ABSOLUTE_FLOOR = 0.05


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_neighborhood", BENCH_DIR / "bench_neighborhood.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def calibration_scale(bench, guard) -> float:
    """This machine's speed relative to the baseline machine's.

    A corrupt or hand-edited baseline can carry a zero/negative/NaN
    ``calibration_seconds``; rescaling by it would divide by zero (or
    flip the bar's sign), so anything non-positive or non-finite
    degrades to scale 1.0 (compare raw wall-clocks).
    """
    recorded = guard.get("calibration_seconds")
    if (
        not isinstance(recorded, (int, float))
        or not math.isfinite(recorded)
        or recorded <= 0.0
    ):
        return 1.0
    return bench.calibrate() / recorded


def run_guard(engine: str, baseline_seconds: float) -> None:
    payload = json.loads(BASELINE.read_text())
    guard = payload["guard"]
    bench = load_bench_module()

    problem = bench.build_instance(guard["seed"], tiny=guard["tiny"])
    start = greedy_interval_period(problem).mapping
    # Rescale the recorded baseline to this machine's speed.
    scale = calibration_scale(bench, guard)

    # Warm the kernel tables (attempt 0), then keep the best of three
    # runs so a scheduler hiccup cannot fail the guard.
    best = float("inf")
    for attempt in range(4):
        t0 = time.perf_counter()
        solution = hill_climb(
            problem,
            start,
            Criterion.PERIOD,
            max_iterations=guard["max_iterations"],
            engine=engine,
        )
        elapsed = time.perf_counter() - t0
        if attempt > 0:  # attempt 0 is the warm-up
            best = min(best, elapsed)
    assert solution.stats["n_steps"] >= 1

    allowed = max(
        MAX_REGRESSION * baseline_seconds * scale,
        ABSOLUTE_FLOOR,
    )
    assert best <= allowed, (
        f"{engine} hill_climb took {best:.3f}s on the reference instance; "
        f"recorded baseline {baseline_seconds:.3f}s "
        f"(calibration scale {scale:.2f}) allows at most {allowed:.3f}s"
    )


@pytest.mark.skipif(
    not BASELINE.exists(),
    reason="BENCH_neighborhood.json baseline not recorded",
)
def test_hill_climb_has_not_regressed_past_recorded_baseline():
    guard = json.loads(BASELINE.read_text())["guard"]
    run_guard("batched", guard["batched_seconds"])


@pytest.mark.skipif(
    not BASELINE.exists(),
    reason="BENCH_neighborhood.json baseline not recorded",
)
def test_compiled_hill_climb_has_not_regressed_past_recorded_baseline():
    if not compiled.HAVE_NUMBA:
        pytest.skip(
            "numba is not installed (pip install repro-pipelines[compiled]); "
            "the compiled engine would fall back to batched here"
        )
    guard = json.loads(BASELINE.read_text())["guard"]
    if guard.get("compiled_seconds") is None:
        pytest.skip(
            "baseline was recorded without numba: no compiled wall-clock "
            "to guard against (re-record with the [compiled] extra)"
        )
    compiled.warmup()  # JIT compile outside the timed runs
    run_guard("compiled", guard["compiled_seconds"])
