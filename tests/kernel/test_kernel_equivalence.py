"""Property tests: the vectorized kernel agrees with the scalar reference.

The equivalence contract of ``repro/kernel``: for every valid mapping, on
every platform class and under both communication models,

* ``EvaluationContext.evaluate`` == ``evaluate_scalar`` (within 1e-9 rtol);
* ``EvaluationContext.delta_evaluate`` after any local-search move equals a
  full re-evaluation of the moved-to mapping.
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CommunicationModel, EvaluationContext, ProblemInstance
from repro.algorithms.heuristics import neighbors
from repro.core.evaluation import evaluate_scalar
from repro.kernel import interval_cycle_matrix, latency_segment_matrix
from repro.algorithms.interval_period import interval_cycle

from ..properties.strategies import het_mapped_instances, mapped_instances

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]

RTOL = 1e-9


def assert_values_close(scalar, kernel):
    """Component-wise comparison of two CriteriaValues at 1e-9 rtol."""
    assert kernel.periods.keys() == scalar.periods.keys()
    for a in scalar.periods:
        assert kernel.periods[a] == pytest.approx(scalar.periods[a], rel=RTOL)
        assert kernel.latencies[a] == pytest.approx(
            scalar.latencies[a], rel=RTOL
        )
    assert kernel.period == pytest.approx(scalar.period, rel=RTOL)
    assert kernel.latency == pytest.approx(scalar.latency, rel=RTOL)
    assert kernel.energy == pytest.approx(scalar.energy, rel=RTOL)


@given(mapped_instances(), st.sampled_from(BOTH_MODELS))
@settings(max_examples=80, deadline=None)
def test_kernel_matches_scalar_homogeneous(instance, model):
    """Kernel == scalar on fully homogeneous platforms, both models."""
    apps, platform, mapping = instance
    scalar = evaluate_scalar(apps, platform, mapping, model=model)
    kernel = EvaluationContext(apps, platform, model=model).evaluate(mapping)
    assert_values_close(scalar, kernel)


@given(het_mapped_instances(), st.sampled_from(BOTH_MODELS))
@settings(max_examples=80, deadline=None)
def test_kernel_matches_scalar_heterogeneous(instance, model):
    """Kernel == scalar through every bandwidth-resolution path (explicit
    links, virtual in/out links, per-app bandwidths, default)."""
    apps, platform, mapping = instance
    scalar = evaluate_scalar(apps, platform, mapping, model=model)
    kernel = EvaluationContext(apps, platform, model=model).evaluate(mapping)
    assert_values_close(scalar, kernel)


@given(mapped_instances(max_apps=2, max_stages=4), st.sampled_from(BOTH_MODELS))
@settings(max_examples=40, deadline=None)
def test_delta_evaluate_matches_full(instance, model):
    """delta_evaluate after one local-search move == full re-evaluation."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform, model=model)
    ctx = EvaluationContext.for_problem(problem)
    base_values = ctx.evaluate(mapping)
    for candidate in itertools.islice(neighbors(problem, mapping), 25):
        full = ctx.evaluate(candidate)
        delta = ctx.delta_evaluate(candidate, mapping, base_values)
        assert delta.periods == full.periods
        assert delta.latencies == full.latencies
        assert delta.period == full.period
        assert delta.latency == full.latency
        assert delta.energy == full.energy


@given(mapped_instances(max_apps=2, max_stages=4), st.sampled_from(BOTH_MODELS))
@settings(max_examples=20, deadline=None)
def test_delta_evaluate_along_random_walk(instance, model):
    """delta_evaluate stays exact when chained move after move."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform, model=model)
    ctx = EvaluationContext.for_problem(problem)
    current = mapping
    values = ctx.evaluate(current)
    for step in range(5):
        options = list(itertools.islice(neighbors(problem, current), 10))
        if not options:
            break
        candidate = options[step % len(options)]
        values = ctx.delta_evaluate(candidate, current, values)
        current = candidate
        fresh = ctx.evaluate(current)
        assert values.period == fresh.period
        assert values.latency == fresh.latency
        assert values.energy == fresh.energy


@given(
    mapped_instances(max_apps=1, max_stages=5),
    st.sampled_from(BOTH_MODELS),
)
@settings(max_examples=40, deadline=None)
def test_cycle_matrix_matches_scalar_cycles(instance, model):
    """interval_cycle_matrix[j, i] == interval_cycle(stages j..i-1)."""
    apps, platform, _ = instance
    app = apps[0]
    speed = platform.processor(0).max_speed
    bandwidth = platform.default_bandwidth
    table = interval_cycle_matrix(app, speed, bandwidth, model)
    n = app.n_stages
    for j in range(n):
        for i in range(n + 1):
            if i <= j:
                assert math.isinf(table[j, i])
            else:
                expected = interval_cycle(
                    app, (j, i - 1), speed, bandwidth, model
                )
                assert table[j, i] == pytest.approx(expected, rel=RTOL)


@given(mapped_instances(max_apps=1, max_stages=5))
@settings(max_examples=40, deadline=None)
def test_latency_segments_match_scalar(instance):
    """latency_segment_matrix[j, i] == work(j..i-1)/s + delta_i/b."""
    apps, platform, _ = instance
    app = apps[0]
    speed = platform.processor(0).max_speed
    bandwidth = platform.default_bandwidth
    table = latency_segment_matrix(app, speed, bandwidth)
    n = app.n_stages
    for j in range(n):
        for i in range(j + 1, n + 1):
            expected = (
                app.work_sum(j, i - 1) / speed
                + app.output_size(i - 1) / bandwidth
            )
            assert table[j, i] == pytest.approx(expected, rel=RTOL)


def test_context_o1_lookups(fig1_apps, fig1_platform):
    """work_sum / interval sizes agree with the Application accessors."""
    ctx = EvaluationContext(fig1_apps, fig1_platform)
    for a, app in enumerate(fig1_apps):
        for lo in range(app.n_stages):
            for hi in range(lo, app.n_stages):
                assert ctx.work_sum(a, lo, hi) == app.work_sum(lo, hi)
                assert ctx.interval_input_size(
                    a, (lo, hi)
                ) == app.interval_input_size((lo, hi))
                assert ctx.interval_output_size(
                    a, (lo, hi)
                ) == app.interval_output_size((lo, hi))
