"""Property tests: the compiled (Numba) engine's kernels are candidate-
for-candidate equivalent to the batched neighborhood path.

The contract of :mod:`repro.kernel.compiled`: for every valid mapping,
under both mapping rules and both communication models, the compiled
plan

* counts exactly the candidates of
  :func:`~repro.kernel.generate_neighborhood`;
* generates the same candidate at every index (``take(i)`` materializes
  to ``batch.materialize(i)``);
* evaluates and scores each candidate **bit-identically** to
  ``evaluate_many`` + ``score_values`` (the property that makes compiled
  hill climbing replay the batched walk exactly);
* picks the same best step as the batched argmin + tie-break replay.

All of it runs here through the pure-Python test hook
(``_FORCE_PYTHON_ENGINE``): the decode/evaluate/score/accept code under
test is the genuine compiled path, executed interpreted, so the
equivalence holds with or without Numba installed (with Numba, the JIT
compiles these same functions).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CommunicationModel,
    Criterion,
    MappingRule,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms.heuristics.local_search import score_many, score_values
from repro.kernel import compiled, generate_neighborhood

from ..properties.strategies import (
    het_mapped_instances,
    mapped_instances,
    one_to_one_mapped_instances,
)
from .test_neighborhood_property import forced_python_compiled

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]
ALL_CRITERIA = [Criterion.PERIOD, Criterion.LATENCY, Criterion.ENERGY]


def loose_thresholds(base):
    """Thresholds that straddle the base values, so the penalty branches
    of the compiled scorer (violated and satisfied) both execute."""
    return Thresholds(
        period=base.period * 0.9,
        latency=base.latency * 1.1,
        energy=base.energy,
        per_app_period=tuple(
            base.periods[a] * 0.95 for a in sorted(base.periods)
        ),
        per_app_latency=tuple(
            base.latencies[a] * 1.05 for a in sorted(base.latencies)
        ),
    )


def assert_compiled_matches_batch(problem, mapping, criterion):
    """Per-candidate: count, decode, criteria and score all match."""
    ctx = problem.evaluation_context()
    base = ctx.evaluate(mapping)
    thresholds = loose_thresholds(base)
    batch = generate_neighborhood(problem, mapping)

    plan, reason = compiled.acquire(problem)
    assert reason is None and plan is not None
    state = plan.state_from(mapping)
    assert plan.materialize(state) == mapping
    free = plan.free_procs(state)
    n = plan.count(state, free)
    assert n == len(batch)
    if n == 0:
        return
    values = ctx.evaluate_many(batch)
    scores = score_many(values, criterion, thresholds)
    crit = plan.criteria_arrays(criterion, thresholds)
    for i in range(n):
        reference = values.select(i)
        s, got = plan.propose(state, free, i, crit)
        # Bit-identical, not merely approximately equal.
        assert s == scores[i] == score_values(reference, criterion, thresholds)
        assert got == reference
        taken = plan.take(state, free, i)
        assert plan.materialize(taken) == batch.materialize(i)

    # The fused best-step agrees with the batched argmin + strict
    # sequential tie-break replay.
    current_score = score_values(base, criterion, thresholds)
    best_index, best_score = plan.best_step(
        state, free, crit, current_score, limit=n
    )
    expected_index, expected_score = -1, current_score
    for i in range(n):
        if scores[i] < expected_score - 1e-15:
            expected_index, expected_score = i, scores[i]
    assert best_index == expected_index
    if best_index >= 0:
        assert best_score == expected_score


@given(
    mapped_instances(max_apps=2, max_stages=4),
    st.sampled_from(BOTH_MODELS),
    st.sampled_from(ALL_CRITERIA),
)
@settings(max_examples=30, deadline=None)
def test_compiled_matches_batch_interval(instance, model, criterion):
    """INTERVAL rule, homogeneous platforms, both models, all criteria."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform, model=model)
    with forced_python_compiled():
        assert_compiled_matches_batch(problem, mapping, criterion)


@given(
    het_mapped_instances(max_apps=2, max_stages=4),
    st.sampled_from(BOTH_MODELS),
    st.sampled_from(ALL_CRITERIA),
)
@settings(max_examples=30, deadline=None)
def test_compiled_matches_batch_heterogeneous(instance, model, criterion):
    """INTERVAL rule through every bandwidth-resolution path."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform, model=model)
    with forced_python_compiled():
        assert_compiled_matches_batch(problem, mapping, criterion)


@given(
    one_to_one_mapped_instances(max_apps=2, max_stages=4),
    st.sampled_from(BOTH_MODELS),
    st.sampled_from(ALL_CRITERIA),
)
@settings(max_examples=30, deadline=None)
def test_compiled_matches_batch_one_to_one(instance, model, criterion):
    """ONE_TO_ONE rule: shift/split/merge disabled, same equivalence."""
    apps, platform, mapping = instance
    problem = ProblemInstance(
        apps=apps,
        platform=platform,
        rule=MappingRule.ONE_TO_ONE,
        model=model,
    )
    with forced_python_compiled():
        assert_compiled_matches_batch(problem, mapping, criterion)


def test_plan_is_memoized_per_problem(fig1_problem):
    with forced_python_compiled():
        assert compiled.plan_for(fig1_problem) is compiled.plan_for(
            fig1_problem
        )


def test_warmup_is_idempotent_and_reports_availability():
    with forced_python_compiled():
        assert compiled.warmup() is True
        assert compiled.warmup() is True
    if not compiled.HAVE_NUMBA:
        assert compiled.warmup() is False
