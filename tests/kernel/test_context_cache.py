"""Tests for the per-problem memoization of ``EvaluationContext``."""

import gc

from repro import EvaluationContext
from repro.generators import small_random_problem
from repro.kernel.context import _CONTEXT_CACHE


class TestForProblemCache:
    def test_repeated_calls_hit_the_cache(self):
        problem = small_random_problem(0)
        first = EvaluationContext.for_problem(problem)
        assert EvaluationContext.for_problem(problem) is first

    def test_evaluation_context_shares_the_same_instance(self):
        problem = small_random_problem(1)
        assert (
            problem.evaluation_context()
            is EvaluationContext.for_problem(problem)
        )
        assert problem.evaluation_context() is problem.evaluation_context()

    def test_distinct_problems_get_distinct_contexts(self):
        a = small_random_problem(2)
        b = small_random_problem(3)
        assert (
            EvaluationContext.for_problem(a)
            is not EvaluationContext.for_problem(b)
        )

    def test_explicit_context_still_wins(self):
        problem = small_random_problem(4)
        explicit = EvaluationContext(
            problem.apps,
            problem.platform,
            model=problem.model,
            energy_model=problem.energy_model,
        )
        assert problem.evaluation_context(explicit) is explicit

    def test_cache_entry_dies_with_the_problem(self):
        problem = small_random_problem(5)
        EvaluationContext.for_problem(problem)
        key = id(problem)
        assert key in _CONTEXT_CACHE
        del problem
        gc.collect()
        assert key not in _CONTEXT_CACHE

    def test_pickle_roundtrip_does_not_carry_the_context(self):
        import pickle

        problem = small_random_problem(6)
        problem.evaluation_context()
        clone = pickle.loads(pickle.dumps(problem))
        assert "_eval_context" not in clone.__dict__
        # ... and the clone builds (and memoizes) its own.
        assert clone.evaluation_context() is clone.evaluation_context()
        assert clone.evaluation_context() is not problem.evaluation_context()

    def test_score_reuses_one_context(self, monkeypatch):
        """Repeated score() calls stop rebuilding the kernel tables."""
        from repro.algorithms.heuristics import greedy_interval_period
        from repro.algorithms.heuristics.local_search import score
        from repro.core.types import Criterion
        from repro.core.objectives import Thresholds

        problem = small_random_problem(7)
        builds = []
        original = EvaluationContext.__init__

        def counting(self, *args, **kwargs):
            builds.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(EvaluationContext, "__init__", counting)
        mapping = greedy_interval_period(problem).mapping
        for _ in range(5):
            score(problem, mapping, Criterion.PERIOD, Thresholds())
        assert sum(builds) <= 1
