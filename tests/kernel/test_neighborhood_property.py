"""Property tests: the array-native neighborhood engine is equivalent to
the scalar generator + delta-evaluation path.

The contract of ``repro.kernel.neighborhood`` + ``evaluate_many``: for
every valid mapping, under both mapping rules, both communication models
and every platform class,

* :func:`~repro.kernel.generate_neighborhood` enumerates exactly the
  candidates of :func:`repro.algorithms.heuristics.neighbors`, in the
  same order (candidate ``i`` materializes to the ``i``-th scalar
  neighbor);
* :meth:`~repro.kernel.EvaluationContext.evaluate_many` over the batch
  is element-wise equal (within 1e-9 -- in fact bit-identical) to
  per-neighbor ``delta_evaluate``;
* :func:`~repro.algorithms.heuristics.local_search.score_many` matches
  per-candidate ``score_values``;
* all three :func:`~repro.algorithms.heuristics.hill_climb` engines
  return identical solutions (the ``"compiled"`` engine runs its real
  kernel code here through the pure-Python test hook
  ``repro.kernel.compiled._FORCE_PYTHON_ENGINE``, so the equivalence is
  asserted even where Numba is not installed).
"""

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CommunicationModel,
    Criterion,
    EvaluationContext,
    MappingRule,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms.heuristics import hill_climb, neighbors
from repro.algorithms.heuristics.local_search import score_many, score_values
from repro.kernel import compiled, generate_neighborhood

from ..properties.strategies import (
    het_mapped_instances,
    mapped_instances,
    one_to_one_mapped_instances,
)

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]

RTOL = 1e-9


@contextmanager
def forced_python_compiled():
    """Run the compiled engine's real kernels interpreted (no Numba
    needed): the plan, decode and accept-replay code under test is the
    genuine compiled path, minus the JIT."""
    old = compiled._FORCE_PYTHON_ENGINE
    compiled._FORCE_PYTHON_ENGINE = True
    try:
        yield
    finally:
        compiled._FORCE_PYTHON_ENGINE = old


def assert_batch_matches_scalar(problem, mapping):
    """The batched neighborhood scores exactly like the scalar path."""
    ctx = problem.evaluation_context()
    base_values = ctx.evaluate(mapping)
    scalar = list(neighbors(problem, mapping))
    batch = generate_neighborhood(problem, mapping)
    assert len(batch) == len(scalar)
    values = ctx.evaluate_many(batch)
    assert len(values) == len(scalar)
    for i, candidate in enumerate(scalar):
        reference = ctx.delta_evaluate(candidate, mapping, base_values)
        got = values.select(i)
        assert got.period == pytest.approx(reference.period, rel=RTOL)
        assert got.latency == pytest.approx(reference.latency, rel=RTOL)
        assert got.energy == pytest.approx(reference.energy, rel=RTOL)
        for a in reference.periods:
            assert got.periods[a] == pytest.approx(
                reference.periods[a], rel=RTOL
            )
            assert got.latencies[a] == pytest.approx(
                reference.latencies[a], rel=RTOL
            )
        # The engines are in fact bit-identical, which is what makes
        # batched hill climbing reproduce the scalar walk exactly.
        assert got.period == reference.period
        assert got.latency == reference.latency
        assert got.energy == reference.energy
        assert batch.materialize(i) == candidate


@given(mapped_instances(max_apps=2, max_stages=4), st.sampled_from(BOTH_MODELS))
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar_interval_homogeneous(instance, model):
    """INTERVAL rule, fully homogeneous platforms, both models."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform, model=model)
    assert_batch_matches_scalar(problem, mapping)


@given(
    het_mapped_instances(max_apps=2, max_stages=4),
    st.sampled_from(BOTH_MODELS),
)
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar_interval_heterogeneous(instance, model):
    """INTERVAL rule through every bandwidth-resolution path."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform, model=model)
    assert_batch_matches_scalar(problem, mapping)


@given(
    one_to_one_mapped_instances(max_apps=2, max_stages=4),
    st.sampled_from(BOTH_MODELS),
)
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar_one_to_one(instance, model):
    """ONE_TO_ONE rule: shift/split/merge disabled, same equivalence."""
    apps, platform, mapping = instance
    problem = ProblemInstance(
        apps=apps,
        platform=platform,
        rule=MappingRule.ONE_TO_ONE,
        model=model,
    )
    for candidate in generate_neighborhood(problem, mapping).kinds:
        assert candidate <= 2  # mode / swap / move only
    assert_batch_matches_scalar(problem, mapping)


@given(mapped_instances(max_apps=2, max_stages=4))
@settings(max_examples=25, deadline=None)
def test_score_many_matches_score_values(instance):
    """Vectorized scoring replicates the scalar penalty accumulation."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform)
    ctx = problem.evaluation_context()
    base = ctx.evaluate(mapping)
    thresholds = Thresholds(
        period=base.period * 0.9,
        latency=base.latency * 1.1,
        energy=base.energy,
        per_app_period=tuple(
            base.periods[a] * 0.95 for a in sorted(base.periods)
        ),
        per_app_latency=tuple(
            base.latencies[a] * 1.05 for a in sorted(base.latencies)
        ),
    )
    batch = generate_neighborhood(problem, mapping)
    if len(batch) == 0:
        return
    values = ctx.evaluate_many(batch)
    for criterion in Criterion:
        scores = score_many(values, criterion, thresholds)
        for i in range(len(batch)):
            assert scores[i] == score_values(
                values.select(i), criterion, thresholds
            )


@given(
    mapped_instances(max_apps=2, max_stages=3),
    st.sampled_from([Criterion.PERIOD, Criterion.LATENCY, Criterion.ENERGY]),
)
@settings(max_examples=15, deadline=None)
def test_hill_climb_engines_identical(instance, criterion):
    """All three hill-climb engines return identical solutions."""
    apps, platform, mapping = instance
    problem = ProblemInstance(apps=apps, platform=platform)
    with forced_python_compiled():
        solutions = {
            engine: hill_climb(
                problem,
                mapping,
                criterion,
                max_iterations=4,
                engine=engine,
            )
            for engine in ("batched", "scalar", "compiled")
        }
    for engine in ("scalar", "compiled"):
        assert solutions["batched"].mapping == solutions[engine].mapping
        assert solutions["batched"].objective == solutions[engine].objective
        assert solutions["batched"].values == solutions[engine].values
        assert solutions["batched"].stats == solutions[engine].stats


def test_empty_batch_evaluates_to_empty_vectors(fig1_apps, fig1_platform):
    """A zero-candidate batch round-trips through evaluate_many."""
    import numpy as np

    class EmptyBatch:
        app = np.empty(0, dtype=np.intp)
        lo = np.empty(0, dtype=np.intp)
        hi = np.empty(0, dtype=np.intp)
        proc = np.empty(0, dtype=np.intp)
        speed = np.empty(0)
        starts = np.zeros(1, dtype=np.intp)

    ctx = EvaluationContext(fig1_apps, fig1_platform)
    values = ctx.evaluate_many(EmptyBatch())
    assert len(values) == 0
    assert values.period.shape == (0,)
