"""Graceful degradation of the ``"compiled"`` neighborhood engine.

Contract (:func:`repro.kernel.compiled.acquire`):

* with Numba absent, ``engine="compiled"`` falls back to the batched
  engine and returns **byte-identical** solutions;
* an unsupported problem shape (custom ``EnergyModel`` subclass)
  downgrades the same way, even when the engine itself is available;
* each distinct fallback reason warns **exactly once per process**
  (``RuntimeWarning``), never once per solve;
* the registry helpers (``engine_names`` / ``engine_info`` /
  ``using_engine``) expose the compiled engine and restore state.
"""

import warnings

import pytest

from repro.algorithms.heuristics import anneal, hill_climb
from repro.algorithms.heuristics import local_search
from repro.core.energy import EnergyModel
from repro.core.problem import ProblemInstance
from repro.core.types import Criterion
from repro.generators import small_random_problem
from repro.kernel import compiled

from .test_neighborhood_property import forced_python_compiled


class TracedEnergyModel(EnergyModel):
    """A pluggable energy model the compiled kernels cannot hard-code."""


@pytest.fixture
def fresh_warnings():
    """Reset the once-per-process warning dedup around a test."""
    saved = set(compiled._WARNED)
    compiled._WARNED.clear()
    yield
    compiled._WARNED.clear()
    compiled._WARNED.update(saved)


@pytest.fixture
def problem():
    return small_random_problem(0)


def greedy_start(problem):
    from repro.algorithms.heuristics import greedy_interval_period

    return greedy_interval_period(problem).mapping


def test_numba_absent_falls_back_to_batched(problem, fresh_warnings):
    if compiled.HAVE_NUMBA:
        pytest.skip("numba is installed: the absent-numba path cannot run")
    start = greedy_start(problem)
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        via_compiled = hill_climb(
            problem, start, Criterion.PERIOD, max_iterations=4,
            engine="compiled",
        )
    batched = hill_climb(
        problem, start, Criterion.PERIOD, max_iterations=4, engine="batched"
    )
    assert via_compiled.mapping == batched.mapping
    assert via_compiled.objective == batched.objective
    assert via_compiled.values == batched.values
    assert via_compiled.stats == batched.stats


def test_anneal_numba_absent_falls_back_to_batched(problem, fresh_warnings):
    if compiled.HAVE_NUMBA:
        pytest.skip("numba is installed: the absent-numba path cannot run")
    start = greedy_start(problem)
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        via_compiled = anneal(
            problem, start, Criterion.PERIOD, seed=0, n_iterations=30,
            engine="compiled",
        )
    batched = anneal(
        problem, start, Criterion.PERIOD, seed=0, n_iterations=30,
        engine="batched",
    )
    assert via_compiled.mapping == batched.mapping
    assert via_compiled.values == batched.values
    assert via_compiled.stats == batched.stats


def test_unsupported_shape_downgrades_even_when_available(fresh_warnings):
    """A custom EnergyModel subclass is outside the kernels' hard-coded
    shapes: the plan is refused (with its own reason) and the solve
    still matches batched bit-for-bit."""
    base = small_random_problem(1)
    custom = ProblemInstance(
        apps=base.apps,
        platform=base.platform,
        rule=base.rule,
        model=base.model,
        energy_model=TracedEnergyModel(
            alpha=base.energy_model.alpha,
        ),
    )
    start = greedy_start(custom)
    with forced_python_compiled():
        assert compiled.available()
        assert "TracedEnergyModel" in compiled.support_reason(custom)
        with pytest.warns(RuntimeWarning, match="TracedEnergyModel"):
            plan, reason = compiled.acquire(custom)
        assert plan is None and "TracedEnergyModel" in reason
        via_compiled = hill_climb(
            custom, start, Criterion.PERIOD, max_iterations=4,
            engine="compiled",
        )
    batched = hill_climb(
        custom, start, Criterion.PERIOD, max_iterations=4, engine="batched"
    )
    assert via_compiled.mapping == batched.mapping
    assert via_compiled.values == batched.values
    assert via_compiled.stats == batched.stats


def test_fallback_warning_fires_exactly_once_per_reason(
    problem, fresh_warnings
):
    if compiled.HAVE_NUMBA:
        pytest.skip("numba is installed: no fallback to warn about")
    start = greedy_start(problem)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(3):
            hill_climb(
                problem, start, Criterion.PERIOD, max_iterations=2,
                engine="compiled",
            )
    fallback = [
        w for w in caught
        if issubclass(w.category, RuntimeWarning)
        and "numba is not installed" in str(w.message)
    ]
    assert len(fallback) == 1


def test_supported_problem_warns_nothing(problem):
    """The happy path is silent: no fallback, no warning."""
    start = greedy_start(problem)
    with forced_python_compiled():
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            hill_climb(
                problem, start, Criterion.PERIOD, max_iterations=2,
                engine="compiled",
            )


def test_engine_registry_exposes_all_three():
    assert local_search.engine_names() == ("batched", "scalar", "compiled")
    info = local_search.engine_info()
    assert info["engines"] == ["batched", "scalar", "compiled"]
    assert info["default"] == local_search.DEFAULT_ENGINE
    assert info["compiled_available"] == compiled.available()
    assert info["numba"] == compiled.NUMBA_VERSION


def test_using_engine_sets_and_restores_default():
    before = local_search.DEFAULT_ENGINE
    with local_search.using_engine("scalar"):
        assert local_search.DEFAULT_ENGINE == "scalar"
    assert local_search.DEFAULT_ENGINE == before
    with local_search.using_engine(None):  # no-op
        assert local_search.DEFAULT_ENGINE == before
    with pytest.raises(ValueError, match="unknown neighborhood engine"):
        with local_search.using_engine("nope"):
            pass  # pragma: no cover
    assert local_search.DEFAULT_ENGINE == before


def test_using_engine_restores_on_exception():
    before = local_search.DEFAULT_ENGINE
    with pytest.raises(RuntimeError):
        with local_search.using_engine("scalar"):
            raise RuntimeError("boom")
    assert local_search.DEFAULT_ENGINE == before
