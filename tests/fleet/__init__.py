"""Fault-injection test harness for the sharded solve fleet."""
