"""Fault injection against a real router + daemon fleet.

The acceptance bars, verbatim from the ISSUE:

* SIGKILL-ing a shard mid-queue loses no accepted job: everything the
  fleet accepted reaches a terminal state — jobs held by survivors
  complete in place, jobs held by the dead shard complete through the
  dedup-idempotent resubmission path;
* after the kill, keys are remapped *only* for the dead shard;
* a frozen (SIGSTOP) shard trips the router's upstream timeout and its
  submissions fail over to the next replica;
* a corrupted cache entry is self-healing: treated as a miss, removed,
  recomputed — never served;
* fleet results are byte-identical to a single-daemon run.

Every test boots real processes, so the module is marked ``slow``-ish
by construction (a few seconds each); it stays in tier 1 because the
guarantees above are this PR's acceptance criteria.
"""

import json

import pytest

from repro.client import ClientError, SolveClient
from repro.generators import small_random_problem
from repro.server import HashRing, ServerThread, split_job_id

from .harness import FleetHarness


@pytest.fixture(scope="module")
def fleet():
    """One router process fronting two daemon processes."""
    with FleetHarness(2) as harness:
        yield harness


def canonical_solution(result):
    """Byte-comparable rendering of a result's solution payload.

    Per-run diagnostics are dropped (``stats``, the telemetry's
    ``wall_time`` and its trace correlation ids, which are unique per
    submission by design); mapping, objective, optimality flag, every
    criterion value and the deterministic telemetry (strategy,
    evaluation count) must match to the byte.
    """
    payload = dict(result.raw["solution"])
    payload.pop("stats", None)
    if isinstance(payload.get("telemetry"), dict):
        telemetry = dict(payload["telemetry"])
        telemetry.pop("wall_time", None)
        telemetry.pop("trace_id", None)
        telemetry.pop("span_id", None)
        payload["telemetry"] = telemetry
    return json.dumps(payload, sort_keys=True)


class TestShardKill:
    @pytest.fixture(scope="class")
    def killed_fleet(self):
        """A 2-shard fleet with a batch in flight when shard0 dies.

        Class-scoped: the kill is irreversible, so every test in this
        class reads the same post-mortem state.
        """
        with FleetHarness(2) as harness:
            client = harness.client(retries=0)
            problems = [small_random_problem(seed) for seed in range(10)]
            accepted = [client.submit(p)["id"] for p in problems]
            before_owner = {
                seed: harness.owner_of(problems[seed]) for seed in range(10)
            }
            harness.kill_shard("shard0")
            yield harness, problems, accepted, before_owner

    def test_no_accepted_job_is_lost(self, killed_fleet):
        harness, problems, accepted, _owners = killed_fleet
        client = harness.client(retries=2)
        # Jobs accepted by the surviving shard complete in place, under
        # their original routed ids.
        for job_id in accepted:
            if split_job_id(job_id)[1] == "shard1":
                assert client.wait(job_id, timeout=120).ok
        # Jobs accepted by the dead shard complete through resubmission
        # (dedup makes the retry idempotent; the ring remaps the key).
        for problem in problems:
            result = client.solve(problem, timeout=120)
            assert result.ok
        assert client.healthz()["shards_up"] == 1

    def test_keys_remapped_only_for_dead_shard(self, killed_fleet):
        harness, problems, _accepted, before_owner = killed_fleet
        client = harness.client(retries=2)
        survivor_ring = HashRing(["shard1"])
        for seed, problem in enumerate(problems):
            view = client.submit(problem)
            landed = split_job_id(view["id"])[1]
            if before_owner[seed] == "shard1":
                # Keys the survivor already owned must not move.
                assert landed == "shard1"
            else:
                # Dead shard's keys remap to the surviving membership.
                assert landed == survivor_ring.node_for(
                    harness.key_of(problem)
                )

    def test_dead_shards_jobs_are_unreachable_not_silent(self, killed_fleet):
        harness, _problems, accepted, _owners = killed_fleet
        client = harness.client(retries=0)
        dead_ids = [
            job_id for job_id in accepted
            if split_job_id(job_id)[1] == "shard0"
        ]
        assert dead_ids, "the batch must have landed work on shard0"
        with pytest.raises(ClientError, match="unreachable"):
            client.job(dead_ids[0])

    def test_router_reports_the_markdown(self, killed_fleet):
        harness, _problems, _accepted, _owners = killed_fleet
        metrics = harness.client(retries=2).metrics()
        health = {s["name"]: s["up"] for s in metrics["shard_health"]}
        assert health == {"shard0": False, "shard1": True}
        assert metrics["router"]["markdowns"] >= 1


class TestShardFreeze:
    def test_frozen_shard_fails_over_to_replica(self):
        # Short upstream timeout: a frozen shard accepts the TCP
        # connect (kernel backlog) but never answers, so failover rides
        # the timeout, not a connect error.
        with FleetHarness(
            2,
            router_args=(
                "--health-interval", "0.2",
                "--fail-threshold", "2",
                "--upstream-timeout", "1.5",
            ),
        ) as harness:
            client = harness.client(retries=0, timeout=60.0)
            seed = harness.seed_owned_by("shard0")
            harness.freeze_shard("shard0")
            try:
                result = client.solve(
                    small_random_problem(seed), timeout=120
                )
                assert result.ok
                assert split_job_id(result.job_id)[1] == "shard1"
                metrics = client.metrics()
                assert metrics["router"]["retries"] >= 1
            finally:
                harness.thaw_shard("shard0")
            # The thawed shard comes back up and serves its keys again.
            harness.wait_shards_up(2)
            result = client.solve(small_random_problem(seed), timeout=120)
            assert result.ok


class TestCacheCorruption:
    def test_corrupt_entry_is_recomputed_not_served(self):
        with FleetHarness(2) as harness:
            client = harness.client(retries=2)
            seed = harness.seed_owned_by("shard0")
            problem = small_random_problem(seed)
            first = client.solve(problem, timeout=120)
            assert first.ok
            key = harness.key_of(problem)
            path = harness.corrupt_cache_entry("shard0", key)
            # A fresh daemon process (cold memo) must hit the corrupt
            # file; same port and cache dir keep its ring identity.
            harness.kill_shard("shard0")
            harness.restart_shard("shard0")
            harness.wait_shards_up(2)
            second = client.solve(problem, timeout=120)
            assert second.ok
            assert second.source in ("solved", "coalesced")  # not "cache"
            assert canonical_solution(second) == canonical_solution(first)
            # The entry healed on disk: valid JSON again.
            assert json.loads(path.read_text())["status"] == "ok"


class TestSingleDaemonEquivalence:
    def test_fleet_results_byte_identical_to_single_daemon(self, fleet):
        problems = [small_random_problem(seed) for seed in range(6)]
        fleet_client = fleet.client(retries=2)
        fleet_results = [
            fleet_client.solve(p, timeout=120) for p in problems
        ]
        shards_used = {
            split_job_id(r.job_id)[1] for r in fleet_results
        }
        assert len(shards_used) == 2, (
            "the sample must exercise both shards"
        )
        with ServerThread(executor="thread", concurrency=2) as single:
            solo = SolveClient(single.url, timeout=30.0)
            for problem, fleet_result in zip(problems, fleet_results):
                solo_result = solo.solve(problem, timeout=120)
                assert canonical_solution(solo_result) == canonical_solution(
                    fleet_result
                )
                assert solo_result.status == fleet_result.status

    def test_duplicate_submissions_across_fleet_solve_once(self, fleet):
        client = fleet.client(retries=2)
        problem = small_random_problem(990)
        first = client.solve(problem, timeout=120)
        owner = split_job_id(first.job_id)[1]
        for _ in range(3):
            repeat = client.solve(problem, timeout=120)
            assert split_job_id(repeat.job_id)[1] == owner
            assert repeat.source == "cache"
            assert canonical_solution(repeat) == canonical_solution(first)
        # Exactly one shard ever solved this cell: the other shard's
        # cache directory has no entry for its key.
        other = ({"shard0", "shard1"} - {owner}).pop()
        assert fleet.cache_path(owner, fleet.key_of(problem)).exists()
        assert not fleet.cache_path(other, fleet.key_of(problem)).exists()
