"""Boot a *real* sharded fleet — router process + daemon processes —
and inject faults into it.

:class:`FleetHarness` runs everything out-of-process on ephemeral
ports, exactly as ``repro-pipelines route --spawn N`` would in
production, except the harness owns each daemon's ``Popen`` handle so
tests can do unpleasant things to individual shards:

* :meth:`kill_shard` — ``SIGKILL``, no warning, no cleanup (a crashed
  or OOM-killed daemon);
* :meth:`freeze_shard` / :meth:`thaw_shard` — ``SIGSTOP``/``SIGCONT``
  (a livelocked daemon: connects succeed, responses never come, the
  router's upstream timeout and mark-down/retry path take over);
* :meth:`corrupt_cache_entry` — scribble over one shard's
  content-addressed cache file on disk;
* :meth:`restart_shard` — respawn a killed shard on its *original*
  port with its original cache directory (same ring identity).

The CI ``fleet-smoke`` step drives this module directly (``python -m
tests.fleet.harness``): boot router + 2 shards, submit across both,
SIGKILL one, assert every problem still completes.
"""

from __future__ import annotations

import json
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence
from urllib.parse import urlsplit

from repro.client import SolveClient
from repro.experiments import cell_key_for_payload
from repro.generators import small_random_problem
from repro.io import problem_to_dict
from repro.server import HashRing, Shard
from repro.server.router import _wait_for_url, terminate_fleet

__all__ = ["FleetHarness", "fleet_smoke"]

#: Solver payload used by the harness helpers (the client's default).
SOLVER = {"objective": "period"}

_BOOTSTRAP = "import sys; from repro.cli import main; sys.exit(main())"


def _repo_src() -> str:
    return str(Path(__file__).resolve().parents[2] / "src")


def _child_env() -> Dict[str, str]:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = _repo_src() + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


class FleetHarness:
    """A live fleet of ``n_shards`` solve daemons behind a router.

    Usable as a context manager; :meth:`start` blocks until the router
    and every shard have announced their URLs.  All processes are
    terminated on exit, the cache root only when the harness created it.
    """

    def __init__(
        self,
        n_shards: int = 2,
        *,
        cache_root: Optional[Path] = None,
        executor: str = "thread",
        concurrency: int = 2,
        shard_args: Sequence[str] = (),
        router_args: Sequence[str] = (
            "--health-interval", "0.2",
            "--fail-threshold", "2",
            "--upstream-timeout", "5.0",
        ),
        startup_timeout: float = 60.0,
    ) -> None:
        self.n_shards = n_shards
        self._owns_cache_root = cache_root is None
        self.cache_root = Path(
            tempfile.mkdtemp(prefix="fleet-cache-")
            if cache_root is None
            else cache_root
        )
        self.executor = executor
        self.concurrency = concurrency
        self.shard_args = list(shard_args)
        self.router_args = list(router_args)
        self.startup_timeout = startup_timeout
        self.shards: Dict[str, Shard] = {}
        self.router_proc: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetHarness":
        try:
            for i in range(self.n_shards):
                name = f"shard{i}"
                self.shards[name] = self._spawn_shard(name, port=0)
            argv = [
                sys.executable, "-c", _BOOTSTRAP, "route", "--port", "0",
                *self.router_args,
            ]
            for name, shard in self.shards.items():
                argv += ["--shard", f"{name}={shard.url}"]
            self.router_proc = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=_child_env(),
            )
            self.url = _wait_for_url(self.router_proc, self.startup_timeout)
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        if self.router_proc is not None:
            if self.router_proc.poll() is None:
                self.router_proc.terminate()
                try:
                    self.router_proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    self.router_proc.kill()
                    self.router_proc.wait(timeout=5.0)
            self.router_proc = None
        terminate_fleet(list(self.shards.values()))
        self.shards.clear()
        if self._owns_cache_root:
            shutil.rmtree(self.cache_root, ignore_errors=True)

    def __enter__(self) -> "FleetHarness":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _spawn_shard(self, name: str, port: int) -> Shard:
        cache_dir = self.cache_root / name
        cache_dir.mkdir(parents=True, exist_ok=True)
        argv = [
            sys.executable, "-c", _BOOTSTRAP, "serve",
            "--port", str(port),
            "--shard-name", name,
            "--executor", self.executor,
            "--concurrency", str(self.concurrency),
            "--cache-dir", str(cache_dir),
            *self.shard_args,
        ]
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_child_env(),
        )
        url = _wait_for_url(proc, self.startup_timeout)
        return Shard(name=name, url=url, process=proc)

    # ------------------------------------------------------------------
    # clients and key geometry
    # ------------------------------------------------------------------
    def client(self, **kwargs: Any) -> SolveClient:
        assert self.url is not None, "harness not started"
        kwargs.setdefault("timeout", 30.0)
        return SolveClient(self.url, **kwargs)

    def shard_client(self, name: str, **kwargs: Any) -> SolveClient:
        kwargs.setdefault("timeout", 30.0)
        return SolveClient(self.shards[name].url, **kwargs)

    @property
    def ring(self) -> HashRing:
        """A local replica of the router's ring (default vnodes)."""
        return HashRing(sorted(self.shards))

    def key_of(self, problem) -> str:
        return cell_key_for_payload(problem_to_dict(problem), SOLVER)

    def owner_of(self, problem) -> str:
        return self.ring.node_for(self.key_of(problem))

    def seed_owned_by(self, target: str, *, start: int = 0) -> int:
        """First seed >= ``start`` whose problem the ring maps to
        ``target`` (period objective, default solver)."""
        for seed in range(start, start + 500):
            if self.owner_of(small_random_problem(seed)) == target:
                return seed
        raise AssertionError(f"no seed owned by {target}")

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def kill_shard(self, name: str) -> None:
        """SIGKILL one daemon: no shutdown, queue and memo gone."""
        proc = self.shards[name].process
        assert proc is not None
        proc.kill()
        proc.wait(timeout=10.0)

    def freeze_shard(self, name: str) -> None:
        """SIGSTOP one daemon: TCP connects still succeed (kernel
        backlog), responses never come — the slow-failure mode."""
        proc = self.shards[name].process
        assert proc is not None
        proc.send_signal(signal.SIGSTOP)

    def thaw_shard(self, name: str) -> None:
        proc = self.shards[name].process
        assert proc is not None
        proc.send_signal(signal.SIGCONT)

    def restart_shard(self, name: str) -> None:
        """Respawn a dead shard on its original port, with its original
        cache directory — the same ring identity, a cold process."""
        old = self.shards[name]
        assert old.process is not None and old.process.poll() is not None, (
            "restart_shard expects the shard to be dead"
        )
        port = urlsplit(old.url).port
        deadline = time.monotonic() + 30.0
        while True:
            try:
                self.shards[name] = self._spawn_shard(name, port=port)
                return
            except RuntimeError:
                # The old socket can linger briefly; retry the bind.
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)

    def cache_path(self, name: str, key: str) -> Path:
        return self.cache_root / name / key[:2] / f"{key}.json"

    def corrupt_cache_entry(self, name: str, key: str) -> Path:
        """Overwrite one shard's cache entry with garbage bytes."""
        path = self.cache_path(name, key)
        assert path.exists(), f"no cache entry for {key} on {name}"
        path.write_text("{ this is not json")
        return path

    # ------------------------------------------------------------------
    # waiting helpers
    # ------------------------------------------------------------------
    def wait_shards_up(self, expected: int, *, timeout: float = 30.0) -> None:
        """Block until the router reports ``expected`` shards up."""
        client = self.client(retries=0)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if client.healthz().get("shards_up") == expected:
                    return
            except Exception:
                pass
            time.sleep(0.1)
        raise TimeoutError(
            f"router never reported {expected} shards up within {timeout}s"
        )


def fleet_smoke(n_problems: int = 8) -> Dict[str, Any]:
    """CI smoke: boot router + 2 shards, submit across both, SIGKILL
    one shard, assert every problem still completes.  Returns a small
    summary dict (printed as JSON by ``__main__``)."""
    with FleetHarness(2) as fleet:
        client = fleet.client(retries=2)
        seeds = [
            fleet.seed_owned_by("shard0"),
            fleet.seed_owned_by("shard1"),
        ]
        seen = {fleet.owner_of(small_random_problem(s)) for s in seeds}
        assert seen == {"shard0", "shard1"}, seen
        problems = [small_random_problem(seed) for seed in range(n_problems)]
        ids = [client.submit(p)["id"] for p in problems]
        assert any(i.endswith("@shard0") for i in ids)
        assert any(i.endswith("@shard1") for i in ids)
        fleet.kill_shard("shard0")
        # Resubmission is the documented recovery: dedup keeps it
        # idempotent, the ring remaps only the dead shard's keys.
        objectives = []
        for problem in problems:
            result = client.solve(problem, timeout=120)
            assert result.ok, result
            objectives.append(result.solution.objective)
        health = client.healthz()
        assert health["shards_up"] == 1, health
        return {
            "submitted": len(ids),
            "completed": len(objectives),
            "shards_up_after_kill": health["shards_up"],
        }


if __name__ == "__main__":
    print(json.dumps(fleet_smoke(), indent=2))
