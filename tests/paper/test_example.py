"""Integration tests on the Section 2 motivating example: the library's
solvers must *discover* the paper's worked optima, not merely verify them."""

import pytest

from repro import Criterion, Thresholds
from repro.algorithms.exact import exact_minimize
from repro.paper import (
    FIGURE1_EXPECTED,
    figure1_problem,
    mapping_min_energy,
    mapping_optimal_latency,
    mapping_optimal_period,
)


class TestOptimaAreDiscovered:
    def test_period_1_is_the_optimum(self):
        problem = figure1_problem()
        s = exact_minimize(problem, Criterion.PERIOD)
        assert s.objective == pytest.approx(FIGURE1_EXPECTED["optimal_period"])

    def test_latency_2_75_is_the_optimum(self):
        problem = figure1_problem()
        s = exact_minimize(problem, Criterion.LATENCY)
        assert s.objective == pytest.approx(FIGURE1_EXPECTED["optimal_latency"])

    def test_energy_10_is_the_optimum(self):
        problem = figure1_problem()
        s = exact_minimize(problem, Criterion.ENERGY)
        assert s.objective == pytest.approx(FIGURE1_EXPECTED["min_energy"])

    def test_energy_46_under_period_2(self):
        problem = figure1_problem()
        s = exact_minimize(
            problem, Criterion.ENERGY, Thresholds(period=2.0)
        )
        assert s.objective == pytest.approx(
            FIGURE1_EXPECTED["compromise_energy"]
        )

    def test_energy_136_under_period_1(self):
        # At the optimal period there is no slack: the paper's 136 is the
        # cheapest period-1 configuration.
        problem = figure1_problem()
        s = exact_minimize(
            problem, Criterion.ENERGY, Thresholds(period=1.0)
        )
        assert s.objective == pytest.approx(
            FIGURE1_EXPECTED["optimal_period_energy"]
        )

    def test_period_under_energy_10_budget(self):
        # The paper's stated minimum-energy mapping (App1 on P1@3, App2 on
        # P3@1) has period 14 -- but it is NOT the period-optimal mapping at
        # that energy: swapping the applications (App1 on P3@1, App2 on
        # P1@3) also costs 10 and achieves period 6.  The exact solver must
        # find the better one (recorded in EXPERIMENTS.md).
        problem = figure1_problem()
        s = exact_minimize(
            problem,
            Criterion.PERIOD,
            Thresholds(energy=FIGURE1_EXPECTED["min_energy"]),
            fix_max_speed=False,
        )
        assert s.objective == pytest.approx(6.0)
        assert s.objective < FIGURE1_EXPECTED["min_energy_period"]
        # The paper's own mapping evaluates to the reported 14.
        v = problem.evaluate(mapping_min_energy())
        assert v.period == pytest.approx(
            FIGURE1_EXPECTED["min_energy_period"]
        )


class TestPaperArgumentsHold:
    def test_period_1_saturates_total_speed(self):
        # The paper's optimality argument: total work (20) equals total top
        # speed (20), so no mapping beats period 1.
        problem = figure1_problem()
        total_work = sum(app.total_work for app in problem.apps)
        total_speed = sum(
            p.max_speed for p in problem.platform.processors
        )
        assert total_work == total_speed == 20.0

    def test_min_energy_uses_two_slowest_modes(self):
        problem = figure1_problem()
        mapping = mapping_min_energy()
        speeds = sorted(x.speed for x in mapping.assignments)
        assert speeds == [1.0, 3.0]  # P3 mode 1 and P1 mode 1

    def test_latency_optimum_avoids_all_communication_splits(self):
        mapping = mapping_optimal_latency()
        assert all(len(mapping.for_app(a)) == 1 for a in (0, 1))

    def test_no_overlap_period_worse_or_equal(self):
        from repro import CommunicationModel

        overlap = figure1_problem(CommunicationModel.OVERLAP)
        serial = figure1_problem(CommunicationModel.NO_OVERLAP)
        t_o = exact_minimize(overlap, Criterion.PERIOD).objective
        t_n = exact_minimize(serial, Criterion.PERIOD).objective
        assert t_n >= t_o
