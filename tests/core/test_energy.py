"""Unit tests for the energy model (Section 3.5)."""

import math

import pytest

from repro import EnergyModel, InvalidPlatformError, Processor


class TestEnergyModel:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(InvalidPlatformError):
            EnergyModel(alpha=1.0)
        with pytest.raises(InvalidPlatformError):
            EnergyModel(alpha=0.5)

    def test_dynamic_square(self):
        em = EnergyModel(alpha=2.0)
        assert em.dynamic(3.0) == 9.0

    def test_dynamic_arbitrary_alpha(self):
        em = EnergyModel(alpha=2.5)
        assert em.dynamic(4.0) == pytest.approx(4.0**2.5)

    def test_dynamic_rejects_negative_speed(self):
        with pytest.raises(InvalidPlatformError):
            EnergyModel().dynamic(-1.0)

    def test_processor_energy_includes_static(self):
        em = EnergyModel(alpha=2.0)
        p = Processor(speeds=(2.0,), static_energy=5.0)
        assert em.processor_energy(p, 2.0) == 9.0

    def test_faster_is_less_efficient(self):
        # Energy per unit of work s^alpha / s = s^(alpha-1) grows with s.
        em = EnergyModel(alpha=2.0)
        slow, fast = 1.0, 4.0
        assert em.dynamic(fast) / fast > em.dynamic(slow) / slow

    def test_cheapest_feasible_energy(self):
        em = EnergyModel(alpha=2.0)
        p = Processor(speeds=(1.0, 2.0, 4.0), static_energy=1.0)
        # Slowest mode >= 1.5 is 2.0.
        assert em.cheapest_feasible_energy(p, 1.5) == 5.0
        assert em.cheapest_feasible_energy(p, 0.1) == 2.0
        assert em.cheapest_feasible_energy(p, 8.0) == math.inf
