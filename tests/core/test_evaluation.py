"""Unit tests for the cost model: Equations (3), (4), (5), (6) and the
energy of Section 3.5 -- including the paper's worked numbers."""

import math

import pytest

from repro import (
    Application,
    Assignment,
    CommunicationModel,
    EnergyModel,
    Mapping,
    Platform,
    evaluate,
    global_latency,
    global_period,
    platform_energy,
)
from repro.core.evaluation import (
    application_latency,
    application_period,
    interval_costs,
    interval_cycle_time,
    stage_cycle_time,
    whole_app_latency_on_processor,
)
from repro.paper import (
    FIGURE1_EXPECTED,
    figure1_applications,
    figure1_platform,
    mapping_compromise_energy_46,
    mapping_min_energy,
    mapping_optimal_latency,
    mapping_optimal_period,
)

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


class TestFigure1Numbers:
    """The Section 2 worked example, number for number."""

    @pytest.fixture
    def setting(self):
        return figure1_applications(), figure1_platform()

    def test_equation_1_period(self, setting):
        apps, platform = setting
        v = evaluate(apps, platform, mapping_optimal_period())
        assert v.period == pytest.approx(FIGURE1_EXPECTED["optimal_period"])
        assert v.energy == pytest.approx(
            FIGURE1_EXPECTED["optimal_period_energy"]
        )

    def test_equation_1_per_processor_cycles_all_one(self, setting):
        # "the cycle-time of each processor is exactly 1".
        apps, platform = setting
        costs = interval_costs(apps, platform, mapping_optimal_period())
        for c in costs:
            assert c.cycle_time(OVERLAP) == pytest.approx(1.0)

    def test_equation_2_latency(self, setting):
        apps, platform = setting
        v = evaluate(apps, platform, mapping_optimal_latency())
        assert v.latency == pytest.approx(FIGURE1_EXPECTED["optimal_latency"])

    def test_min_energy_mapping(self, setting):
        apps, platform = setting
        v = evaluate(apps, platform, mapping_min_energy())
        assert v.energy == pytest.approx(FIGURE1_EXPECTED["min_energy"])
        assert v.period == pytest.approx(FIGURE1_EXPECTED["min_energy_period"])

    def test_compromise_mapping(self, setting):
        apps, platform = setting
        v = evaluate(apps, platform, mapping_compromise_energy_46())
        assert v.period == pytest.approx(FIGURE1_EXPECTED["compromise_period"])
        assert v.energy == pytest.approx(FIGURE1_EXPECTED["compromise_energy"])


class TestPeriodFormulas:
    @pytest.fixture
    def app(self):
        return Application.from_lists([4, 6], [2, 8], input_data_size=3)

    @pytest.fixture
    def platform(self):
        return Platform.fully_homogeneous(3, speeds=[2.0], bandwidth=1.0)

    def test_single_interval_overlap(self, app, platform):
        m = Mapping.single_app([((0, 1), 0, 2.0)])
        # max(3/1, 10/2, 8/1) = 8
        assert application_period([app], platform, m, 0, OVERLAP) == 8.0

    def test_single_interval_no_overlap(self, app, platform):
        m = Mapping.single_app([((0, 1), 0, 2.0)])
        # 3 + 5 + 8 = 16
        assert application_period([app], platform, m, 0, NO_OVERLAP) == 16.0

    def test_split_intervals_overlap(self, app, platform):
        m = Mapping.single_app([((0, 0), 0, 2.0), ((1, 1), 1, 2.0)])
        # P0: max(3, 2, 2) = 3 ; P1: max(2, 3, 8) = 8.
        assert application_period([app], platform, m, 0, OVERLAP) == 8.0

    def test_split_intervals_no_overlap(self, app, platform):
        m = Mapping.single_app([((0, 0), 0, 2.0), ((1, 1), 1, 2.0)])
        # P0: 3 + 2 + 2 = 7 ; P1: 2 + 3 + 8 = 13.
        assert application_period([app], platform, m, 0, NO_OVERLAP) == 13.0

    def test_no_overlap_never_below_overlap(self, app, platform):
        for m in (
            Mapping.single_app([((0, 1), 0, 2.0)]),
            Mapping.single_app([((0, 0), 0, 2.0), ((1, 1), 1, 2.0)]),
        ):
            t_o = application_period([app], platform, m, 0, OVERLAP)
            t_n = application_period([app], platform, m, 0, NO_OVERLAP)
            assert t_n >= t_o


class TestLatencyFormula:
    def test_latency_model_independent(self):
        app = Application.from_lists([4, 6], [2, 8], input_data_size=3)
        platform = Platform.fully_homogeneous(3, speeds=[2.0])
        m = Mapping.single_app([((0, 0), 0, 2.0), ((1, 1), 1, 2.0)])
        lat = application_latency([app], platform, m, 0)
        # 3/1 + 4/2 + 2/1 + 6/2 + 8/1 = 3+2+2+3+8 = 18
        assert lat == 18.0

    def test_latency_counts_each_communication_once(self):
        app = Application.from_lists([1, 1, 1], [5, 5, 5], input_data_size=5)
        platform = Platform.fully_homogeneous(4, speeds=[1.0], bandwidth=5.0)
        whole = Mapping.single_app([((0, 2), 0, 1.0)])
        split = Mapping.single_app(
            [((0, 0), 0, 1.0), ((1, 1), 1, 1.0), ((2, 2), 2, 1.0)]
        )
        # whole: 1 + 3 + 1 = 5 ; split adds two extra unit comms.
        assert application_latency([app], platform, whole, 0) == 5.0
        assert application_latency([app], platform, split, 0) == 7.0

    def test_whole_app_helper_agrees(self):
        app = Application.from_lists([4, 6], [2, 8], input_data_size=3)
        platform = Platform.fully_homogeneous(1, speeds=[2.0], bandwidth=2.0)
        m = Mapping.single_app([((0, 1), 0, 2.0)])
        assert whole_app_latency_on_processor(
            app, 2.0, 2.0, 2.0
        ) == pytest.approx(application_latency([app], platform, m, 0))


class TestWeightedObjectives:
    def test_global_period_weighted(self):
        apps = (
            Application.from_lists([2], [0], weight=1.0),
            Application.from_lists([2], [0], weight=10.0),
        )
        platform = Platform.fully_homogeneous(2, speeds=[1.0])
        m = Mapping.from_assignments(
            [
                Assignment(app=0, interval=(0, 0), proc=0, speed=1.0),
                Assignment(app=1, interval=(0, 0), proc=1, speed=1.0),
            ]
        )
        # Both unweighted periods are 2; weights make app 1 dominate.
        assert global_period(apps, platform, m) == 20.0
        assert global_latency(apps, platform, m) == 20.0
        v = evaluate(apps, platform, m)
        assert v.periods == {0: 2.0, 1: 2.0}
        assert v.period == 20.0


class TestEnergy:
    def test_energy_sums_enrolled_processors(self):
        platform = Platform.fully_homogeneous(
            3, speeds=[2.0, 3.0], static_energy=1.0
        )
        m = Mapping.from_assignments(
            [
                Assignment(app=0, interval=(0, 0), proc=0, speed=2.0),
                Assignment(app=0, interval=(1, 1), proc=2, speed=3.0),
            ]
        )
        # (1 + 4) + (1 + 9); processor 1 is not enrolled.
        assert platform_energy(platform, m) == 15.0

    def test_energy_exponent(self):
        platform = Platform.fully_homogeneous(1, speeds=[2.0])
        m = Mapping.single_app([((0, 0), 0, 2.0)])
        e3 = platform_energy(platform, m, EnergyModel(alpha=3.0))
        assert e3 == pytest.approx(8.0)

    def test_meets_thresholds(self):
        apps = figure1_applications()
        platform = figure1_platform()
        v = evaluate(apps, platform, mapping_compromise_energy_46())
        assert v.meets(period=2.0, energy=46.0)
        assert v.meets(period=2.0 * (1 + 1e-12))  # tolerance absorbs round-off
        assert not v.meets(period=1.9)
        assert not v.meets(energy=45.0)
        assert v.meets()  # no bounds


class TestCostHelpers:
    def test_stage_cycle_time(self):
        app = Application.from_lists([6], [4], input_data_size=2)
        assert stage_cycle_time(app, 0, 3.0, 2.0, OVERLAP) == 2.0
        assert stage_cycle_time(app, 0, 3.0, 2.0, NO_OVERLAP) == pytest.approx(
            1.0 + 2.0 + 2.0
        )

    def test_interval_cycle_time_distinct_bandwidths(self):
        app = Application.from_lists([2, 2], [4, 8], input_data_size=2)
        t = interval_cycle_time(app, (0, 1), 1.0, 2.0, 4.0, OVERLAP)
        # max(2/2, 4/1, 8/4) = 4
        assert t == 4.0

    def test_interval_costs_structure(self):
        apps = figure1_applications()
        platform = figure1_platform()
        costs = interval_costs(apps, platform, mapping_optimal_period())
        assert len(costs) == 3
        by_app = {}
        for c in costs:
            by_app.setdefault(c.app, []).append(c)
        assert len(by_app[0]) == 1 and len(by_app[1]) == 2
