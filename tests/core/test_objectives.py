"""Unit tests for objectives, weights and thresholds (Section 3.4, §5)."""

import math

import pytest

from repro import Application, Thresholds
from repro.core.objectives import (
    meets_threshold,
    stretch_weights,
    weighted_max,
    with_weights,
)


class TestWeightedMax:
    def test_basic(self):
        assert weighted_max([1.0, 2.0], [3.0, 1.0]) == 3.0

    def test_plain_max_with_unit_weights(self):
        assert weighted_max([4.0, 2.0, 3.0], [1.0, 1.0, 1.0]) == 4.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_max([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_max([], [])


class TestMeetsThreshold:
    def test_none_is_unconstrained(self):
        assert meets_threshold(math.inf, None)

    def test_tolerance(self):
        assert meets_threshold(1.0 + 1e-12, 1.0)
        assert not meets_threshold(1.001, 1.0)

    def test_zero_bound(self):
        assert meets_threshold(0.0, 0.0)


class TestThresholds:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(period=-1.0)

    def test_per_app_bounds_override_global(self):
        app = Application.from_lists([1], [0], weight=2.0)
        th = Thresholds(period=10.0, per_app_period=(3.0,))
        assert th.period_bound_for_app(app, 0) == 3.0

    def test_global_bound_divided_by_weight(self):
        # W_a * T_a <= bound  =>  T_a <= bound / W_a.
        app = Application.from_lists([1], [0], weight=2.0)
        th = Thresholds(period=10.0)
        assert th.period_bound_for_app(app, 0) == 5.0
        assert th.latency_bound_for_app(app, 0) == math.inf

    def test_unbounded(self):
        app = Application.from_lists([1], [0])
        th = Thresholds()
        assert th.period_bound_for_app(app, 0) == math.inf
        assert th.latency_bound_for_app(app, 0) == math.inf

    def test_constrains(self):
        from repro import Criterion

        th = Thresholds(period=1.0)
        assert th.constrains(Criterion.PERIOD)
        assert not th.constrains(Criterion.LATENCY)
        assert not th.constrains(Criterion.ENERGY)
        th2 = Thresholds(per_app_latency=(1.0,), energy=5.0)
        assert th2.constrains(Criterion.LATENCY)
        assert th2.constrains(Criterion.ENERGY)


class TestWeightHelpers:
    def test_with_weights(self):
        apps = (
            Application.from_lists([1], [0]),
            Application.from_lists([2], [0]),
        )
        reweighted = with_weights(apps, [2.0, 3.0])
        assert [a.weight for a in reweighted] == [2.0, 3.0]
        # Originals untouched (immutability).
        assert [a.weight for a in apps] == [1.0, 1.0]

    def test_with_weights_mismatch(self):
        with pytest.raises(ValueError):
            with_weights((Application.from_lists([1], [0]),), [1.0, 2.0])

    def test_stretch_weights(self):
        assert stretch_weights([2.0, 4.0]) == (0.5, 0.25)

    def test_stretch_weights_rejects_zero(self):
        with pytest.raises(ValueError):
            stretch_weights([0.0])
