"""Unit tests for platforms and their classification (Section 3.2)."""

import pytest

from repro import InvalidPlatformError, Platform, PlatformClass
from repro.core.types import IN_ENDPOINT, OUT_ENDPOINT


class TestConstruction:
    def test_fully_homogeneous(self):
        p = Platform.fully_homogeneous(4, speeds=[1.0, 2.0], bandwidth=3.0)
        assert p.n_processors == 4
        assert p.default_bandwidth == 3.0
        assert p.platform_class is PlatformClass.FULLY_HOMOGENEOUS
        assert p.common_speed_set() == (1.0, 2.0)

    def test_comm_homogeneous(self):
        p = Platform.comm_homogeneous([[1.0], [2.0]], bandwidth=1.0)
        assert p.platform_class is PlatformClass.COMM_HOMOGENEOUS
        assert p.has_homogeneous_links

    def test_fully_heterogeneous(self):
        p = Platform.fully_heterogeneous(
            [[1.0], [2.0]], {(0, 1): 5.0}, default_bandwidth=1.0
        )
        assert p.platform_class is PlatformClass.FULLY_HETEROGENEOUS
        assert not p.has_homogeneous_links

    def test_empty_platform_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform(processors=())

    def test_bad_bandwidth_rejected(self):
        from repro.core.processor import uniform_processors

        with pytest.raises(InvalidPlatformError):
            Platform(
                processors=uniform_processors(1, [1.0]), default_bandwidth=0.0
            )

    def test_bad_link_rejected(self):
        from repro.core.processor import uniform_processors

        with pytest.raises(InvalidPlatformError):
            Platform(
                processors=uniform_processors(2, [1.0]),
                links={(0, 5): 1.0},
            )
        with pytest.raises(InvalidPlatformError):
            Platform(
                processors=uniform_processors(2, [1.0]),
                links={(0, 1): -1.0},
            )


class TestBandwidthResolution:
    def test_default(self):
        p = Platform.fully_homogeneous(3, [1.0], bandwidth=2.0)
        assert p.bandwidth(0, 1) == 2.0
        assert p.bandwidth(IN_ENDPOINT, 0, app=1) == 2.0
        assert p.bandwidth(0, OUT_ENDPOINT, app=0) == 2.0

    def test_links_are_bidirectional(self):
        p = Platform.fully_heterogeneous([[1.0], [1.0]], {(1, 0): 7.0})
        assert p.bandwidth(0, 1) == 7.0
        assert p.bandwidth(1, 0) == 7.0

    def test_per_app_bandwidth(self):
        p = Platform.comm_homogeneous(
            [[1.0], [1.0]], bandwidth=1.0, app_bandwidths={1: 4.0}
        )
        assert p.bandwidth(0, 1, app=0) == 1.0
        assert p.bandwidth(0, 1, app=1) == 4.0
        assert p.bandwidth(IN_ENDPOINT, 0, app=1) == 4.0

    def test_virtual_links(self):
        p = Platform.fully_heterogeneous(
            [[1.0], [1.0]],
            {},
            in_links={(0, 1): 9.0},
            out_links={(0, 0): 3.0},
        )
        assert p.bandwidth(IN_ENDPOINT, 1, app=0) == 9.0
        assert p.bandwidth(IN_ENDPOINT, 0, app=0) == 1.0  # fallback
        assert p.bandwidth(0, OUT_ENDPOINT, app=0) == 3.0

    def test_invalid_endpoints(self):
        p = Platform.fully_homogeneous(2, [1.0])
        with pytest.raises(InvalidPlatformError):
            p.bandwidth(IN_ENDPOINT, OUT_ENDPOINT)
        with pytest.raises(InvalidPlatformError):
            p.bandwidth("bogus", 0)


class TestClassification:
    def test_identical_processors_detection(self):
        p = Platform.comm_homogeneous([[1.0, 2.0], [1.0, 2.0]])
        assert p.has_identical_processors
        assert p.platform_class is PlatformClass.FULLY_HOMOGENEOUS

    def test_static_energy_breaks_identity(self):
        from repro.core.processor import Processor

        p = Platform(
            processors=(
                Processor(speeds=(1.0,), static_energy=0.0),
                Processor(speeds=(1.0,), static_energy=1.0),
            )
        )
        assert not p.has_identical_processors

    def test_app_bandwidths_make_comm_homogeneous(self):
        # Per-application (but within-app uniform) links: the Theorem 1
        # refinement still counts as communication homogeneous.
        p = Platform.comm_homogeneous(
            [[1.0], [2.0]], bandwidth=1.0, app_bandwidths={0: 2.0}
        )
        assert p.platform_class is PlatformClass.COMM_HOMOGENEOUS

    def test_uni_modal_flag(self):
        assert Platform.fully_homogeneous(2, [1.0]).is_uni_modal
        assert not Platform.fully_homogeneous(2, [1.0, 2.0]).is_uni_modal


class TestSelectors:
    def test_fastest_processors(self):
        p = Platform.comm_homogeneous([[1.0], [5.0], [3.0]])
        assert p.fastest_processors(2) == (1, 2)
        assert p.fastest_processors(3) == (1, 2, 0)

    def test_fastest_processors_tie_break_by_index(self):
        p = Platform.comm_homogeneous([[2.0], [2.0], [1.0]])
        assert p.fastest_processors(2) == (0, 1)

    def test_fastest_out_of_range(self):
        p = Platform.fully_homogeneous(2, [1.0])
        with pytest.raises(InvalidPlatformError):
            p.fastest_processors(3)

    def test_slowest_first(self):
        p = Platform.comm_homogeneous([[4.0], [1.0], [2.0]])
        assert p.processors_slowest_first() == (1, 2, 0)

    def test_common_speed_set_requires_identical(self):
        p = Platform.comm_homogeneous([[1.0], [2.0]])
        with pytest.raises(InvalidPlatformError):
            p.common_speed_set()

    def test_processor_out_of_range(self):
        p = Platform.fully_homogeneous(2, [1.0])
        with pytest.raises(InvalidPlatformError):
            p.processor(2)
