"""Unit tests for multi-modal processors (Section 3.2)."""

import pytest

from repro import InvalidPlatformError, Processor
from repro.core.processor import processors_from_speed_sets, uniform_processors


class TestProcessor:
    def test_speeds_sorted_and_deduplicated(self):
        p = Processor(speeds=(3.0, 1.0, 2.0, 1.0))
        assert p.speeds == (1.0, 2.0, 3.0)

    def test_min_max(self):
        p = Processor(speeds=(2.0, 5.0))
        assert p.min_speed == 2.0
        assert p.max_speed == 5.0
        assert p.n_modes == 2
        assert not p.is_uni_modal

    def test_uni_modal(self):
        assert Processor(speeds=(4.0,)).is_uni_modal

    def test_empty_speeds_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Processor(speeds=())

    def test_non_positive_speed_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Processor(speeds=(0.0, 1.0))
        with pytest.raises(InvalidPlatformError):
            Processor(speeds=(-1.0,))

    def test_negative_static_energy_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Processor(speeds=(1.0,), static_energy=-0.1)

    def test_has_speed(self):
        p = Processor(speeds=(1.0, 2.5))
        assert p.has_speed(2.5)
        assert p.has_speed(2.5 * (1 + 1e-12))  # tolerant matching
        assert not p.has_speed(2.0)

    def test_slowest_speed_at_least(self):
        p = Processor(speeds=(1.0, 2.0, 4.0))
        assert p.slowest_speed_at_least(0.5) == 1.0
        assert p.slowest_speed_at_least(1.5) == 2.0
        assert p.slowest_speed_at_least(4.0) == 4.0
        assert p.slowest_speed_at_least(4.1) is None

    def test_modes_at_least(self):
        p = Processor(speeds=(1.0, 2.0, 4.0))
        assert p.modes_at_least(1.5) == (2.0, 4.0)
        assert p.modes_at_least(5.0) == ()


class TestFactories:
    def test_uniform_processors(self):
        procs = uniform_processors(3, [1.0, 2.0], static_energy=0.5)
        assert len(procs) == 3
        assert all(p.speeds == (1.0, 2.0) for p in procs)
        assert all(p.static_energy == 0.5 for p in procs)
        assert procs[0].name == "P1" and procs[2].name == "P3"

    def test_uniform_processors_zero_count(self):
        with pytest.raises(InvalidPlatformError):
            uniform_processors(0, [1.0])

    def test_from_speed_sets(self):
        procs = processors_from_speed_sets([[1.0], [2.0, 3.0]])
        assert procs[0].speeds == (1.0,)
        assert procs[1].speeds == (2.0, 3.0)

    def test_from_speed_sets_static_mismatch(self):
        with pytest.raises(InvalidPlatformError):
            processors_from_speed_sets([[1.0]], static_energies=[1.0, 2.0])
