"""Unit tests for the shared enumerations."""

import pytest

from repro import CommunicationModel, Criterion, MappingRule, PlatformClass


class TestMappingRule:
    def test_one_to_one_admits_singletons_only(self):
        rule = MappingRule.ONE_TO_ONE
        assert rule.admits((3, 3))
        assert not rule.admits((3, 4))

    def test_interval_admits_ranges(self):
        rule = MappingRule.INTERVAL
        assert rule.admits((3, 3))
        assert rule.admits((0, 5))
        assert not rule.admits((5, 0))

    def test_values(self):
        assert MappingRule("one-to-one") is MappingRule.ONE_TO_ONE
        assert MappingRule("interval") is MappingRule.INTERVAL


class TestCommunicationModel:
    def test_overlap_is_max(self):
        assert CommunicationModel.OVERLAP.combine(1.0, 5.0, 3.0) == 5.0

    def test_no_overlap_is_sum(self):
        assert CommunicationModel.NO_OVERLAP.combine(1.0, 5.0, 3.0) == 9.0

    def test_sum_dominates_max(self):
        for triple in ((1.0, 2.0, 3.0), (0.0, 0.0, 0.0), (7.0, 1.0, 1.0)):
            assert CommunicationModel.NO_OVERLAP.combine(
                *triple
            ) >= CommunicationModel.OVERLAP.combine(*triple)


class TestPlatformClass:
    def test_link_homogeneity_flags(self):
        assert PlatformClass.FULLY_HOMOGENEOUS.has_homogeneous_links
        assert PlatformClass.COMM_HOMOGENEOUS.has_homogeneous_links
        assert not PlatformClass.FULLY_HETEROGENEOUS.has_homogeneous_links

    def test_processor_identity_flags(self):
        assert PlatformClass.FULLY_HOMOGENEOUS.has_identical_processors
        assert not PlatformClass.COMM_HOMOGENEOUS.has_identical_processors


class TestCriterion:
    def test_all_three(self):
        assert {c.value for c in Criterion} == {"period", "latency", "energy"}
