"""Unit tests for problem instances and solutions."""

import math

import pytest

from repro import (
    Application,
    InfeasibleProblemError,
    MappingRule,
    Platform,
    PlatformClass,
    ProblemInstance,
    Solution,
)
from repro.paper import figure1_problem, mapping_optimal_period


class TestProblemInstance:
    def test_counts(self, fig1_problem):
        assert fig1_problem.n_apps == 2
        assert fig1_problem.n_stages_total == 7

    def test_platform_class(self, fig1_problem):
        # Figure 1 has heterogeneous speed sets but homogeneous links.
        assert fig1_problem.platform_class is PlatformClass.COMM_HOMOGENEOUS

    def test_one_to_one_needs_enough_processors(self):
        apps = (Application.from_lists([1, 1], [0, 0]),)
        platform = Platform.fully_homogeneous(1, [1.0])
        with pytest.raises(InfeasibleProblemError):
            ProblemInstance(
                apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
            )

    def test_one_processor_per_app_minimum(self):
        apps = (
            Application.from_lists([1], [0]),
            Application.from_lists([1], [0]),
        )
        platform = Platform.fully_homogeneous(1, [1.0])
        with pytest.raises(InfeasibleProblemError):
            ProblemInstance(apps=apps, platform=platform)

    def test_evaluate_and_check(self, fig1_problem):
        mapping = mapping_optimal_period()
        fig1_problem.check_mapping(mapping)
        v = fig1_problem.evaluate(mapping)
        assert v.period == pytest.approx(1.0)

    def test_no_overlap_problem(self):
        from repro import CommunicationModel

        problem = figure1_problem(CommunicationModel.NO_OVERLAP)
        v = problem.evaluate(mapping_optimal_period())
        # Serialization can only increase the period.
        assert v.period >= 1.0


class TestSolution:
    def test_is_feasible(self, fig1_problem):
        mapping = mapping_optimal_period()
        values = fig1_problem.evaluate(mapping)
        s = Solution(
            mapping=mapping,
            objective=values.period,
            values=values,
            solver="test",
        )
        assert s.is_feasible
        s2 = Solution(
            mapping=mapping,
            objective=math.inf,
            values=values,
            solver="test",
        )
        assert not s2.is_feasible
