"""Unit tests for the applicative framework (Section 3.1)."""

import pytest

from repro import Application, InvalidApplicationError, Stage
from repro.core.application import total_stages, validate_applications


class TestStage:
    def test_fields(self):
        s = Stage(work=3.0, output_size=2.0)
        assert s.work == 3.0
        assert s.output_size == 2.0

    def test_zero_work_allowed(self):
        # A pure-forwarding stage is legal in the model.
        assert Stage(work=0.0, output_size=1.0).work == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Stage(work=-1.0, output_size=0.0)

    def test_negative_output_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Stage(work=1.0, output_size=-0.5)


class TestApplicationConstruction:
    def test_from_lists(self):
        app = Application.from_lists([1, 2, 3], [4, 5, 6], input_data_size=7)
        assert app.n_stages == 3
        assert app.works == (1, 2, 3)
        assert app.output_sizes == (4, 5, 6)
        assert app.input_data_size == 7

    def test_from_lists_length_mismatch(self):
        with pytest.raises(InvalidApplicationError):
            Application.from_lists([1, 2], [3])

    def test_empty_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Application(stages=())

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Application.from_lists([1], [0], weight=0.0)

    def test_negative_input_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Application.from_lists([1], [0], input_data_size=-1)

    def test_homogeneous_builder(self):
        app = Application.homogeneous(4, work=2.0)
        assert app.n_stages == 4
        assert app.is_homogeneous
        assert not app.has_communication
        assert app.total_work == 8.0

    def test_homogeneous_rejects_zero_stages(self):
        with pytest.raises(InvalidApplicationError):
            Application.homogeneous(0)

    def test_stages_coerced_to_tuple(self):
        app = Application(stages=[Stage(1.0, 0.0)])
        assert isinstance(app.stages, tuple)


class TestApplicationAccessors:
    @pytest.fixture
    def app(self):
        return Application.from_lists(
            [3, 2, 1, 5], [10, 20, 30, 40], input_data_size=5
        )

    def test_total_work(self, app):
        assert app.total_work == 11

    def test_work_sum_prefix(self, app):
        assert app.work_sum(0, 3) == 11
        assert app.work_sum(1, 2) == 3
        assert app.work_sum(2, 2) == 1

    def test_work_sum_matches_naive(self, app):
        for lo in range(4):
            for hi in range(lo, 4):
                naive = sum(app.works[lo : hi + 1])
                assert app.work_sum(lo, hi) == pytest.approx(naive)

    def test_work_sum_invalid_interval(self, app):
        with pytest.raises(InvalidApplicationError):
            app.work_sum(2, 1)
        with pytest.raises(InvalidApplicationError):
            app.work_sum(0, 4)

    def test_input_size_chain(self, app):
        # delta_0 = input; delta_i = output of stage i-1.
        assert app.input_size(0) == 5
        assert app.input_size(1) == 10
        assert app.input_size(3) == 30

    def test_output_size(self, app):
        assert app.output_size(0) == 10
        assert app.output_size(3) == 40

    def test_input_size_out_of_range(self, app):
        with pytest.raises(InvalidApplicationError):
            app.input_size(4)
        with pytest.raises(InvalidApplicationError):
            app.input_size(-1)

    def test_interval_io_sizes(self, app):
        assert app.interval_input_size((0, 2)) == 5
        assert app.interval_input_size((1, 3)) == 10
        assert app.interval_output_size((0, 2)) == 30
        assert app.interval_output_size((1, 3)) == 40

    def test_has_communication(self):
        silent = Application.from_lists([1, 1], [0, 0])
        assert not silent.has_communication
        assert Application.from_lists([1], [1]).has_communication
        assert Application.from_lists(
            [1], [0], input_data_size=1
        ).has_communication


class TestIntervalPartitions:
    def test_count_is_two_to_n_minus_one(self):
        app = Application.homogeneous(5)
        partitions = list(app.iter_interval_partitions())
        assert len(partitions) == 2 ** (5 - 1)

    def test_partitions_are_valid(self):
        app = Application.homogeneous(4)
        for partition in app.iter_interval_partitions():
            # Consecutive, covering, ordered intervals.
            assert partition[0][0] == 0
            assert partition[-1][1] == 3
            for (lo1, hi1), (lo2, hi2) in zip(partition, partition[1:]):
                assert lo2 == hi1 + 1
                assert lo1 <= hi1 and lo2 <= hi2

    def test_partitions_unique(self):
        app = Application.homogeneous(5)
        partitions = list(app.iter_interval_partitions())
        assert len(set(partitions)) == len(partitions)

    def test_partitions_into_m(self):
        from math import comb

        app = Application.homogeneous(6)
        for m in range(1, 7):
            parts = list(app.interval_partitions_into(m))
            assert len(parts) == comb(5, m - 1)
            assert all(len(p) == m for p in parts)

    def test_partitions_into_invalid_m(self):
        app = Application.homogeneous(3)
        assert list(app.interval_partitions_into(0)) == []
        assert list(app.interval_partitions_into(4)) == []

    def test_single_stage(self):
        app = Application.homogeneous(1)
        assert list(app.iter_interval_partitions()) == [((0, 0),)]


class TestHelpers:
    def test_total_stages(self):
        apps = [Application.homogeneous(2), Application.homogeneous(5)]
        assert total_stages(apps) == 7

    def test_validate_applications_empty(self):
        with pytest.raises(InvalidApplicationError):
            validate_applications([])

    def test_validate_applications_passthrough(self):
        apps = [Application.homogeneous(2)]
        assert validate_applications(apps) == apps
