"""Hand-computed evaluation checks on *fully heterogeneous* platforms: the
formulas must pick the right link bandwidth for every communication
(processor pair, per-application virtual input/output links)."""

import pytest

from repro import (
    Application,
    Assignment,
    CommunicationModel,
    Mapping,
    Platform,
    evaluate,
)
from repro.core.evaluation import application_latency, application_period

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


@pytest.fixture
def het_setting():
    """One 3-stage app split across processors 0 -> 2 -> 1 with distinct
    bandwidths everywhere.

    Data sizes: in 6, between stages 4 and 10, out 8.
    Works: 12, 6, 9.  Speeds: P0=2, P1=3, P2=1 (uni-modal).
    Links: (0,1)=4, (0,2)=2, (1,2)=5; Pin->P0 = 3; P1->Pout = 2.
    """
    app = Application.from_lists(
        works=[12, 6, 9], output_sizes=[4, 10, 8], input_data_size=6
    )
    platform = Platform.fully_heterogeneous(
        [[2.0], [3.0], [1.0]],
        {(0, 1): 4.0, (0, 2): 2.0, (1, 2): 5.0},
        default_bandwidth=1.0,
        in_links={(0, 0): 3.0},
        out_links={(0, 1): 2.0},
    )
    mapping = Mapping.from_assignments(
        [
            Assignment(app=0, interval=(0, 0), proc=0, speed=2.0),
            Assignment(app=0, interval=(1, 1), proc=2, speed=1.0),
            Assignment(app=0, interval=(2, 2), proc=1, speed=3.0),
        ]
    )
    return app, platform, mapping


class TestHeterogeneousPeriod:
    def test_overlap_by_hand(self, het_setting):
        app, platform, mapping = het_setting
        # P0: in 6/3=2, comp 12/2=6, out 4/2=2        -> 6
        # P2: in 4/2=2, comp 6/1=6, out 10/5=2        -> 6
        # P1: in 10/5=2, comp 9/3=3, out 8/2=4        -> 4
        t = application_period([app], platform, mapping, 0, OVERLAP)
        assert t == pytest.approx(6.0)

    def test_no_overlap_by_hand(self, het_setting):
        app, platform, mapping = het_setting
        # P0: 2+6+2=10 ; P2: 2+6+2=10 ; P1: 2+3+4=9.
        t = application_period([app], platform, mapping, 0, NO_OVERLAP)
        assert t == pytest.approx(10.0)

    def test_latency_by_hand(self, het_setting):
        app, platform, mapping = het_setting
        # 6/3 + 12/2 + 4/2 + 6/1 + 10/5 + 9/3 + 8/2 = 2+6+2+6+2+3+4 = 25.
        l = application_latency([app], platform, mapping, 0)
        assert l == pytest.approx(25.0)

    def test_simulator_agrees(self, het_setting):
        from repro.simulation import simulate

        app, platform, mapping = het_setting
        for model in (OVERLAP, NO_OVERLAP):
            result = simulate([app], platform, mapping, 200, model=model)
            assert result.measured_period(0) == pytest.approx(
                application_period([app], platform, mapping, 0, model)
            )
            assert result.measured_latency(0) == pytest.approx(25.0)


class TestLinkSelection:
    def test_swapping_processors_changes_period(self, het_setting):
        """Placing the middle interval on P1 instead of P2 changes which
        links are used; the evaluator must notice."""
        app, platform, _ = het_setting
        alt = Mapping.from_assignments(
            [
                Assignment(app=0, interval=(0, 0), proc=0, speed=2.0),
                Assignment(app=0, interval=(1, 1), proc=1, speed=3.0),
                Assignment(app=0, interval=(2, 2), proc=2, speed=1.0),
            ]
        )
        # P1's out link to P2 has bandwidth 5; P2's out to Pout falls back
        # to the default bandwidth 1 -> out time 8.
        t = application_period([app], platform, alt, 0, OVERLAP)
        # P2: in 10/5=2, comp 9/1=9, out 8/1=8 -> 9 dominates.
        assert t == pytest.approx(9.0)

    def test_default_bandwidth_fallback(self):
        app = Application.from_lists([1], [2], input_data_size=2)
        platform = Platform.fully_heterogeneous(
            [[1.0], [1.0]], {(0, 1): 10.0}, default_bandwidth=0.5
        )
        mapping = Mapping.single_app([((0, 0), 0, 1.0)])
        # Pin and Pout links are unspecified: default 0.5 -> 4 time units.
        t = application_period([app], platform, mapping, 0, OVERLAP)
        assert t == pytest.approx(4.0)

    def test_per_app_bandwidth_used_between_stages(self):
        apps = (
            Application.from_lists([1, 1], [6, 0]),
            Application.from_lists([1, 1], [6, 0]),
        )
        platform = Platform.comm_homogeneous(
            [[1.0]] * 4, bandwidth=1.0, app_bandwidths={1: 3.0}
        )
        m = Mapping.from_assignments(
            [
                Assignment(app=0, interval=(0, 0), proc=0, speed=1.0),
                Assignment(app=0, interval=(1, 1), proc=1, speed=1.0),
                Assignment(app=1, interval=(0, 0), proc=2, speed=1.0),
                Assignment(app=1, interval=(1, 1), proc=3, speed=1.0),
            ]
        )
        v = evaluate(apps, platform, m)
        # App 0 pays 6/1 on its inter-stage link, app 1 pays 6/3.
        assert v.periods[0] == pytest.approx(6.0)
        assert v.periods[1] == pytest.approx(2.0)
