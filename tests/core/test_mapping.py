"""Unit tests for mappings and their validation rules (Section 3.3)."""

import pytest

from repro import (
    Application,
    Assignment,
    InvalidMappingError,
    Mapping,
    MappingRule,
    Platform,
)
from repro.core.mapping import run_at_max_speed, run_at_min_speed


@pytest.fixture
def apps():
    return (
        Application.from_lists([1, 2, 3], [1, 1, 1]),
        Application.from_lists([4, 5], [1, 1]),
    )


@pytest.fixture
def platform():
    return Platform.fully_homogeneous(6, speeds=[1.0, 2.0])


def make_mapping(*triples):
    return Mapping.from_assignments(
        Assignment(app=a, interval=iv, proc=u, speed=s)
        for a, iv, u, s in triples
    )


class TestAssignment:
    def test_n_stages(self):
        a = Assignment(app=0, interval=(1, 3), proc=0, speed=1.0)
        assert a.n_stages == 3

    def test_invalid_interval(self):
        with pytest.raises(InvalidMappingError):
            Assignment(app=0, interval=(2, 1), proc=0, speed=1.0)

    def test_invalid_speed(self):
        with pytest.raises(InvalidMappingError):
            Assignment(app=0, interval=(0, 0), proc=0, speed=0.0)

    def test_negative_indices(self):
        with pytest.raises(InvalidMappingError):
            Assignment(app=-1, interval=(0, 0), proc=0, speed=1.0)
        with pytest.raises(InvalidMappingError):
            Assignment(app=0, interval=(0, 0), proc=-2, speed=1.0)


class TestMappingBasics:
    def test_canonical_ordering(self):
        m = make_mapping(
            (1, (0, 1), 3, 1.0),
            (0, (1, 2), 1, 1.0),
            (0, (0, 0), 0, 1.0),
        )
        keys = [(a.app, a.interval[0]) for a in m.assignments]
        assert keys == sorted(keys)

    def test_enrolled_and_applications(self):
        m = make_mapping((0, (0, 2), 4, 1.0), (1, (0, 1), 2, 1.0))
        assert m.enrolled_processors == (2, 4)
        assert m.applications == (0, 1)
        assert len(m) == 2

    def test_processor_of_stage(self):
        m = make_mapping((0, (0, 1), 4, 1.0), (0, (2, 2), 2, 1.0))
        assert m.processor_of_stage(0, 0) == 4
        assert m.processor_of_stage(0, 1) == 4
        assert m.processor_of_stage(0, 2) == 2
        with pytest.raises(InvalidMappingError):
            m.processor_of_stage(0, 3)

    def test_speed_of_proc(self):
        m = make_mapping((0, (0, 2), 1, 2.0))
        assert m.speed_of_proc(1) == 2.0
        with pytest.raises(InvalidMappingError):
            m.speed_of_proc(0)

    def test_with_speeds(self):
        m = make_mapping((0, (0, 2), 1, 2.0), (1, (0, 1), 3, 2.0))
        m2 = m.with_speeds({1: 1.0})
        assert m2.speed_of_proc(1) == 1.0
        assert m2.speed_of_proc(3) == 2.0

    def test_is_one_to_one(self):
        assert make_mapping((0, (0, 0), 0, 1.0), (0, (1, 1), 1, 1.0)).is_one_to_one()
        assert not make_mapping((0, (0, 1), 0, 1.0)).is_one_to_one()

    def test_one_to_one_builder(self, platform):
        m = Mapping.one_to_one(
            {(0, 0): 2, (0, 1): 5}, platform=platform
        )
        assert m.processor_of_stage(0, 0) == 2
        assert m.speed_of_proc(2) == 2.0  # defaults to max speed

    def test_one_to_one_builder_requires_speeds_or_platform(self):
        with pytest.raises(InvalidMappingError):
            Mapping.one_to_one({(0, 0): 1})


class TestValidation:
    def test_valid_interval_mapping(self, apps, platform):
        m = make_mapping(
            (0, (0, 1), 0, 2.0),
            (0, (2, 2), 1, 1.0),
            (1, (0, 1), 2, 2.0),
        )
        m.validate(apps, platform)  # must not raise
        assert m.is_valid(apps, platform)

    def test_empty_mapping(self, apps, platform):
        with pytest.raises(InvalidMappingError):
            Mapping.from_assignments([]).validate(apps, platform)

    def test_missing_application(self, apps, platform):
        m = make_mapping((0, (0, 2), 0, 1.0))
        with pytest.raises(InvalidMappingError, match="application 1"):
            m.validate(apps, platform)

    def test_uncovered_stages(self, apps, platform):
        m = make_mapping((0, (0, 1), 0, 1.0), (1, (0, 1), 1, 1.0))
        with pytest.raises(InvalidMappingError, match="not mapped"):
            m.validate(apps, platform)

    def test_gap_between_intervals(self, apps, platform):
        m = make_mapping(
            (0, (0, 0), 0, 1.0),
            (0, (2, 2), 1, 1.0),
            (1, (0, 1), 2, 1.0),
        )
        with pytest.raises(InvalidMappingError, match="consecutive"):
            m.validate(apps, platform)

    def test_processor_reuse_within_app(self, apps, platform):
        m = make_mapping(
            (0, (0, 1), 0, 1.0),
            (0, (2, 2), 0, 1.0),
            (1, (0, 1), 1, 1.0),
        )
        with pytest.raises(InvalidMappingError, match="twice"):
            m.validate(apps, platform)

    def test_processor_reuse_across_apps(self, apps, platform):
        m = make_mapping((0, (0, 2), 3, 1.0), (1, (0, 1), 3, 1.0))
        with pytest.raises(InvalidMappingError, match="twice"):
            m.validate(apps, platform)

    def test_interval_beyond_stages(self, apps, platform):
        m = make_mapping((0, (0, 3), 0, 1.0), (1, (0, 1), 1, 1.0))
        with pytest.raises(InvalidMappingError):
            m.validate(apps, platform)

    def test_unknown_processor(self, apps, platform):
        m = make_mapping((0, (0, 2), 17, 1.0), (1, (0, 1), 1, 1.0))
        with pytest.raises(InvalidMappingError, match="unknown processor"):
            m.validate(apps, platform)

    def test_speed_not_a_mode(self, apps, platform):
        m = make_mapping((0, (0, 2), 0, 1.5), (1, (0, 1), 1, 1.0))
        with pytest.raises(InvalidMappingError, match="not a mode"):
            m.validate(apps, platform)

    def test_one_to_one_rule_rejects_intervals(self, apps, platform):
        m = make_mapping(
            (0, (0, 2), 0, 1.0),
            (1, (0, 0), 1, 1.0),
            (1, (1, 1), 2, 1.0),
        )
        with pytest.raises(InvalidMappingError, match="not admitted"):
            m.validate(apps, platform, MappingRule.ONE_TO_ONE)


class TestSpeedHelpers:
    def test_run_at_max_speed(self, apps, platform):
        m = make_mapping((0, (0, 2), 0, 1.0), (1, (0, 1), 1, 1.0))
        m2 = run_at_max_speed(m, platform)
        assert all(a.speed == 2.0 for a in m2.assignments)

    def test_run_at_min_speed(self, apps, platform):
        m = make_mapping((0, (0, 2), 0, 2.0), (1, (0, 1), 1, 2.0))
        m2 = run_at_min_speed(m, platform)
        assert all(a.speed == 1.0 for a in m2.assignments)
