"""The strategy registry and the built-in strategies."""

import math

import pytest

from repro import MappingRule, PlatformClass, Thresholds
from repro.generators import small_random_problem
from repro.service import solve_one
from repro.strategies import (
    Capabilities,
    FunctionStrategy,
    SolveBudget,
    StrategyError,
    get_strategy,
    list_strategies,
    register,
    strategy_names,
)

ALL_CLASSES = list(PlatformClass)


class TestRegistry:
    def test_at_least_ten_strategies_registered(self):
        assert len(list_strategies()) >= 10

    def test_names_sorted_and_unique(self):
        names = strategy_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_method_aliases_are_registered(self):
        for alias in ("registry", "auto", "exact", "heuristic"):
            assert get_strategy(alias).name == alias

    def test_unknown_name_lists_known(self):
        with pytest.raises(StrategyError, match="known:"):
            get_strategy("does_not_exist")

    def test_describe_has_capability_fields(self):
        for s in list_strategies():
            d = s.describe()
            assert set(d) >= {
                "name",
                "kind",
                "objectives",
                "rules",
                "cells",
                "needs_thresholds",
                "summary",
            }
            assert d["objectives"]

    def test_duplicate_registration_rejected(self):
        existing = strategy_names()[0]
        with pytest.raises(StrategyError, match="already registered"):
            register(
                FunctionStrategy(
                    name=existing,
                    fn=lambda *a: None,
                    capabilities=Capabilities(),
                )
            )

    def test_reserved_names_rejected(self):
        with pytest.raises(StrategyError, match="reserved"):
            register(
                FunctionStrategy(
                    name="portfolio",
                    fn=lambda *a: None,
                    capabilities=Capabilities(),
                )
            )


class TestAliasesMatchMethods:
    """strategy="x" must reproduce method="x" exactly (the acceptance
    criterion: the method strings are thin aliases)."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("method", ["registry", "heuristic"])
    def test_period_objective(self, seed, method):
        problem = small_random_problem(
            seed, platform_class=ALL_CLASSES[seed % len(ALL_CLASSES)]
        )
        via_method = solve_one(problem, "period", method=method)
        via_strategy = solve_one(problem, "period", strategy=method)
        assert via_strategy.objective == via_method.objective
        assert via_strategy.solver == via_method.solver

    def test_energy_objective(self):
        problem = small_random_problem(
            3, platform_class=PlatformClass.FULLY_HETEROGENEOUS, n_modes=2
        )
        period = solve_one(problem, "period").objective
        thresholds = Thresholds(period=2 * period)
        via_method = solve_one(
            problem, "energy", method="heuristic", thresholds=thresholds
        )
        via_strategy = solve_one(
            problem, "energy", strategy="heuristic", thresholds=thresholds
        )
        assert via_strategy.objective == via_method.objective


class TestBuiltinStrategies:
    def test_theorem_solver_on_its_cell(self):
        problem = small_random_problem(
            0,
            platform_class=PlatformClass.FULLY_HOMOGENEOUS,
            rule=MappingRule.INTERVAL,
        )
        result = get_strategy("period_interval_dp").run(problem, "period")
        assert result.ok and result.solution.optimal
        reference = solve_one(problem, "period", method="auto")
        assert result.solution.objective == pytest.approx(reference.objective)

    def test_theorem_solver_off_cell_is_contained(self):
        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        result = get_strategy("period_interval_dp").run(problem, "period")
        assert result.status == "error"
        assert "cell" in result.telemetry.error

    def test_objective_capability_enforced(self):
        problem = small_random_problem(0)
        result = get_strategy("greedy").run(problem, "energy")
        assert result.status == "error"
        assert "objective" in result.telemetry.error

    def test_mode_scaling_requires_period_threshold(self):
        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HETEROGENEOUS, n_modes=2
        )
        result = get_strategy("mode_scaling").run(problem, "energy")
        assert result.status == "error"
        assert "threshold" in result.telemetry.error

    def test_greedy_latency_objective_rekeyed(self):
        problem = small_random_problem(
            1, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        result = get_strategy("greedy").run(problem, "latency")
        assert result.ok
        assert result.solution.objective == pytest.approx(
            result.solution.values.latency
        )

    def test_local_search_improves_or_matches_greedy(self):
        problem = small_random_problem(
            2, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        greedy = get_strategy("greedy").run(problem, "period")
        refined = get_strategy("local_search").run(problem, "period")
        assert refined.solution.objective <= greedy.solution.objective + 1e-12

    def test_run_reports_evaluations_and_telemetry(self):
        problem = small_random_problem(
            2, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        result = get_strategy("annealing").run(
            problem, "period", budget=SolveBudget(max_evaluations=100, seed=5)
        )
        assert result.ok
        t = result.telemetry
        assert t.strategy == "annealing"
        assert t.evaluations == 100
        assert t.budget_exhausted
        assert t.objective == pytest.approx(result.solution.objective)

    def test_infeasible_is_contained_as_status(self):
        # The energy objective threads thresholds into the exact solver;
        # an impossible period bound is provably infeasible.
        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HETEROGENEOUS, n_modes=2
        )
        result = get_strategy("exact").run(
            problem, "energy", thresholds=Thresholds(period=1e-12)
        )
        assert result.status == "infeasible"
        assert result.solution is None

    def test_raise_for_status_maps_exceptions(self):
        from repro.core.exceptions import InfeasibleProblemError

        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HETEROGENEOUS, n_modes=2
        )
        result = get_strategy("exact").run(
            problem, "energy", thresholds=Thresholds(period=1e-12)
        )
        with pytest.raises(InfeasibleProblemError):
            result.raise_for_status()

    def test_solutions_are_finite_and_valid(self):
        problem = small_random_problem(
            4, platform_class=PlatformClass.COMM_HOMOGENEOUS
        )
        for name in ("greedy", "local_search", "annealing", "heuristic"):
            result = get_strategy(name).run(problem, "period")
            assert result.ok, (name, result.telemetry.error)
            assert math.isfinite(result.solution.objective)
            problem.check_mapping(result.solution.mapping)
