"""Composite strategies: portfolio racing, fallback chaining, spec parsing."""

import pytest

from repro import PlatformClass, Thresholds
from repro.generators import small_random_problem
from repro.strategies import (
    FallbackStrategy,
    PortfolioStrategy,
    SolveBudget,
    StrategyError,
    fallback,
    get_strategy,
    parse_strategy,
    portfolio,
)


def hard_problem(seed=0, **kwargs):
    return small_random_problem(
        seed, platform_class=PlatformClass.FULLY_HETEROGENEOUS, **kwargs
    )


class TestParseStrategy:
    def test_plain_name(self):
        assert parse_strategy("greedy").name == "greedy"

    def test_instance_passthrough(self):
        s = get_strategy("greedy")
        assert parse_strategy(s) is s

    def test_portfolio_spec(self):
        s = parse_strategy("portfolio(greedy, local_search,annealing)")
        assert isinstance(s, PortfolioStrategy)
        assert [m.name for m in s.members] == [
            "greedy",
            "local_search",
            "annealing",
        ]

    def test_nested_composites(self):
        s = parse_strategy("fallback(auto,portfolio(greedy,annealing))")
        assert isinstance(s, FallbackStrategy)
        assert s.members[0].name == "auto"
        assert isinstance(s.members[1], PortfolioStrategy)

    def test_spec_round_trips(self):
        text = "fallback(auto,portfolio(greedy,annealing))"
        assert parse_strategy(text).spec == text

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "portfolio(",
            "portfolio()",
            "portfolio(greedy",
            "portfolio(greedy,)",
            "greedy(local_search)",
            "portfolio(greedy) trailing",
            "portfolio(nope_not_registered)",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(StrategyError):
            parse_strategy(bad)

    def test_non_string_rejected(self):
        with pytest.raises(StrategyError):
            parse_strategy(42)


class TestPortfolio:
    def test_keeps_best_member(self):
        problem = hard_problem(1)
        racer = portfolio("greedy", "local_search", "annealing")
        result = racer.run(
            problem, "period", budget=SolveBudget(max_evaluations=5000, seed=0)
        )
        assert result.ok
        member_objectives = [
            m.objective for m in result.telemetry.members if m.ok
        ]
        assert member_objectives
        assert result.solution.objective == pytest.approx(
            min(member_objectives)
        )

    def test_member_telemetry_recorded(self):
        problem = hard_problem(2)
        result = portfolio("greedy", "annealing").run(
            problem, "period", budget=SolveBudget(max_evaluations=500, seed=1)
        )
        assert [m.strategy for m in result.telemetry.members] == [
            "greedy",
            "annealing",
        ]
        assert result.telemetry.evaluations == sum(
            m.evaluations for m in result.telemetry.members
        )

    def test_failing_member_is_contained(self):
        # period_interval_dp errors on a heterogeneous platform; the
        # portfolio still wins with the greedy member.
        problem = hard_problem(3)
        result = portfolio("period_interval_dp", "greedy").run(problem, "period")
        assert result.ok
        statuses = {m.strategy: m.status for m in result.telemetry.members}
        assert statuses["period_interval_dp"] == "error"
        assert statuses["greedy"] == "ok"

    def test_all_members_failing_propagates_error(self):
        problem = hard_problem(4)
        result = portfolio("period_interval_dp", "latency_one_to_one").run(
            problem, "period"
        )
        assert result.status == "error"
        assert result.solution is None

    def test_infeasible_threshold_reported_infeasible(self):
        problem = hard_problem(5, n_modes=2)
        result = portfolio("exact", "mode_scaling").run(
            problem, "energy", thresholds=Thresholds(period=1e-12)
        )
        assert result.status == "infeasible"

    def test_threshold_violating_solutions_do_not_win(self):
        # hill_climb may return its penalized best even when it violates
        # the thresholds; the portfolio must not crown it.
        problem = hard_problem(6)
        result = portfolio("local_search").run(
            problem, "period", thresholds=Thresholds(latency=1e-12)
        )
        assert result.status in ("infeasible", "error")

    def test_exhausted_meter_stops_launching_members(self):
        # member 0 consumes the whole 1-evaluation cap; the remaining
        # members must not be launched at all.
        problem = hard_problem(11)
        result = portfolio("local_search", "annealing", "annealing").run(
            problem, "period", budget=SolveBudget(max_evaluations=1, seed=0)
        )
        assert len(result.telemetry.members) == 1
        assert result.telemetry.budget_exhausted

    def test_budget_split_across_members(self):
        problem = hard_problem(7)
        result = portfolio("annealing", "annealing", "annealing").run(
            problem, "period", budget=SolveBudget(max_evaluations=900, seed=2)
        )
        for member in result.telemetry.members:
            assert member.evaluations <= 300 + 1

    def test_parallel_racing_matches_sequential_members(self):
        problem = hard_problem(8)
        sequential = portfolio("greedy", "local_search").run(
            problem, "period", budget=SolveBudget(max_evaluations=4000, seed=3)
        )
        parallel = portfolio("greedy", "local_search", workers=2).run(
            problem, "period", budget=SolveBudget(max_evaluations=4000, seed=3)
        )
        assert parallel.ok
        assert parallel.solution.objective == pytest.approx(
            sequential.solution.objective
        )

    def test_empty_portfolio_rejected(self):
        with pytest.raises(StrategyError, match="at least one member"):
            PortfolioStrategy([])


class TestFallback:
    def test_first_success_wins_without_running_rest(self):
        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HOMOGENEOUS
        )
        result = fallback("auto", "annealing").run(problem, "period")
        assert result.ok
        assert [m.strategy for m in result.telemetry.members] == ["auto"]
        assert result.solution.optimal

    def test_chains_past_a_failure(self):
        problem = hard_problem(1)
        # auto raises SolverError on an NP-hard cell -> greedy takes over.
        result = fallback("auto", "greedy").run(problem, "period")
        assert result.ok
        assert [m.status for m in result.telemetry.members] == ["error", "ok"]
        assert result.solution.solver == "greedy-split-bottleneck"

    def test_all_failures_reported(self):
        problem = hard_problem(2)
        result = fallback("auto", "period_interval_dp").run(problem, "period")
        assert result.status == "error"
        assert len(result.telemetry.members) == 2


class TestSolveOneAndBatchIntegration:
    def test_solve_one_accepts_composite_spec(self):
        from repro.service import solve_one

        problem = hard_problem(3)
        solution = solve_one(
            problem,
            "period",
            strategy="portfolio(greedy,local_search)",
            budget=SolveBudget(max_evaluations=2000, seed=0),
        )
        direct = solve_one(problem, "period", strategy="greedy")
        assert solution.objective <= direct.objective + 1e-12

    def test_solve_batch_pools_strategies(self):
        from repro.service import solve_batch

        problems = [hard_problem(s) for s in range(4)]
        budget = SolveBudget(max_evaluations=1000, seed=0)
        sequential = solve_batch(
            problems, strategy="portfolio(greedy,annealing)", budget=budget
        )
        pooled = solve_batch(
            problems,
            strategy="portfolio(greedy,annealing)",
            budget=budget,
            workers=2,
        )
        assert pooled.n_ok == sequential.n_ok == 4
        for a, b in zip(sequential.items, pooled.items):
            assert b.solution.objective == pytest.approx(a.solution.objective)
            assert b.telemetry is not None
            assert b.telemetry.strategy == "portfolio(greedy,annealing)"

    def test_solve_batch_rejects_bad_spec_before_solving(self):
        from repro.service import solve_batch

        with pytest.raises(StrategyError):
            solve_batch([hard_problem(0)], strategy="portfolio(")

    def test_solve_batch_accepts_strategy_instances(self):
        from repro.service import solve_batch

        racer = portfolio("greedy", "local_search")
        result = solve_batch([hard_problem(0)], strategy=racer)
        assert result.n_ok == 1
        assert result.items[0].telemetry.strategy == racer.spec


class TestDeterminism:
    """Identical seeds reproduce identical results (the stochastic
    heuristics draw from a numpy Generator seeded by the budget)."""

    def test_annealing_deterministic_given_seed(self):
        problem = hard_problem(9)
        budget = SolveBudget(max_evaluations=800, seed=123)
        a = get_strategy("annealing").run(problem, "period", budget=budget)
        b = get_strategy("annealing").run(problem, "period", budget=budget)
        assert a.solution.objective == b.solution.objective
        assert a.solution.mapping == b.solution.mapping
        assert a.telemetry.evaluations == b.telemetry.evaluations

    def test_different_seeds_may_differ_but_stay_valid(self):
        problem = hard_problem(9)
        for seed in (1, 2):
            result = get_strategy("annealing").run(
                problem,
                "period",
                budget=SolveBudget(max_evaluations=400, seed=seed),
            )
            assert result.ok
            problem.check_mapping(result.solution.mapping)

    def test_portfolio_deterministic_given_seed(self):
        problem = hard_problem(10)
        budget = SolveBudget(max_evaluations=1500, seed=42)
        racer = portfolio("greedy", "annealing", "annealing")
        a = racer.run(problem, "period", budget=budget)
        b = racer.run(problem, "period", budget=budget)
        assert a.solution.objective == b.solution.objective
        assert [m.objective for m in a.telemetry.members] == [
            m.objective for m in b.telemetry.members
        ]
