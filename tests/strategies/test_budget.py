"""Budget declaration and cooperative enforcement (``repro.strategies``)."""

import math

import pytest

from repro import Criterion, PlatformClass, Thresholds
from repro.algorithms import exact, heuristics, minimize_period
from repro.generators import small_random_problem
from repro.strategies import BudgetMeter, SolveBudget


def hard_problem(seed=0, **kwargs):
    return small_random_problem(
        seed, platform_class=PlatformClass.FULLY_HETEROGENEOUS, **kwargs
    )


class TestSolveBudget:
    def test_defaults_are_unlimited(self):
        budget = SolveBudget()
        assert budget.is_unlimited
        assert budget.to_dict() == {}

    def test_round_trip(self):
        budget = SolveBudget(time_limit=0.5, max_evaluations=100, seed=7)
        assert SolveBudget.from_dict(budget.to_dict()) == budget

    @pytest.mark.parametrize(
        "payload",
        [
            {"time_limit": 0},
            {"time_limit": -1.0},
            {"time_limit": "fast"},
            {"time_limit": True},
            {"max_evaluations": 0},
            {"max_evaluations": 1.5},
            {"max_evaluations": True},
            {"seed": "abc"},
            {"unknown_key": 1},
            "not-a-mapping",
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            SolveBudget.from_dict(payload)


class TestBudgetMeter:
    def test_unlimited_meter_never_exhausts(self):
        meter = BudgetMeter()
        assert all(meter.tick() for _ in range(1000))
        assert meter.n_evaluations == 1000
        assert not meter.exhausted
        assert meter.remaining_time() is None
        assert meter.remaining_evaluations() is None

    def test_evaluation_cap_is_sticky(self):
        meter = SolveBudget(max_evaluations=3).meter()
        assert [meter.tick() for _ in range(5)] == [
            True,
            True,
            True,
            False,
            False,
        ]
        assert meter.n_evaluations == 3
        assert meter.exhausted

    def test_deadline(self):
        meter = SolveBudget(time_limit=1e-9).meter()
        assert not meter.tick()  # already past the (tiny) deadline
        assert meter.exhausted

    def test_charge_credits_and_rederives_exhaustion(self):
        meter = SolveBudget(max_evaluations=10).meter()
        meter.charge(4)
        assert meter.n_evaluations == 4 and not meter.exhausted
        meter.charge(6)
        assert meter.n_evaluations == 10 and meter.exhausted

    def test_remaining_counts(self):
        meter = SolveBudget(max_evaluations=10, time_limit=60.0).meter()
        meter.tick(4)
        assert meter.remaining_evaluations() == 6
        assert 0 < meter.remaining_time() <= 60.0


class TestCooperativeEnforcement:
    """The heuristic/exact loops stop at the budget and keep their best."""

    def test_hill_climb_stops_and_returns_valid_solution(self):
        problem = hard_problem(1)
        start = heuristics.greedy_interval_period(problem)
        meter = SolveBudget(max_evaluations=5).meter()
        solution = heuristics.hill_climb(
            problem, start.mapping, Criterion.PERIOD, budget=meter
        )
        assert math.isfinite(solution.objective)
        assert meter.n_evaluations == 5
        assert solution.stats["budget_exhausted"] == 1.0
        problem.check_mapping(solution.mapping)

    def test_anneal_stops_at_cap(self):
        problem = hard_problem(2)
        start = heuristics.greedy_interval_period(problem)
        meter = SolveBudget(max_evaluations=50).meter()
        solution = heuristics.anneal(
            problem,
            start.mapping,
            Criterion.PERIOD,
            n_iterations=10_000,
            budget=meter,
        )
        assert meter.n_evaluations == 50
        assert solution.stats["budget_exhausted"] == 1.0
        problem.check_mapping(solution.mapping)

    def test_greedy_interval_stops_at_cap(self):
        problem = hard_problem(3)
        meter = SolveBudget(max_evaluations=2).meter()
        solution = heuristics.greedy_interval_period(problem, budget=meter)
        assert solution.stats["budget_exhausted"] == 1.0
        problem.check_mapping(solution.mapping)

    def test_mode_downgrade_stops_at_cap(self):
        problem = hard_problem(4, n_modes=3)
        start = heuristics.greedy_interval_period(problem)
        thresholds = Thresholds(period=start.objective * 4)
        meter = SolveBudget(max_evaluations=3).meter()
        solution = heuristics.greedy_mode_downgrade(
            problem, start.mapping, thresholds, budget=meter
        )
        assert solution.stats["budget_exhausted"] == 1.0
        problem.check_mapping(solution.mapping)

    def test_exact_returns_incumbent_marked_non_optimal(self):
        problem = hard_problem(5)
        full = exact.exact_minimize(problem, Criterion.PERIOD)
        nodes = int(full.stats["nodes"])
        assert nodes > 10
        meter = SolveBudget(max_evaluations=nodes // 2).meter()
        truncated = exact.exact_minimize(
            problem, Criterion.PERIOD, budget=meter
        )
        assert not truncated.optimal
        assert truncated.stats["budget_exhausted"] == 1.0
        assert truncated.objective >= full.objective - 1e-12

    def test_exact_without_incumbent_raises(self):
        from repro.core.exceptions import SolverError

        problem = hard_problem(6)
        meter = SolveBudget(max_evaluations=1).meter()
        with pytest.raises(SolverError, match="budget exhausted"):
            exact.exact_minimize(problem, Criterion.PERIOD, budget=meter)

    def test_brute_force_stops_at_cap(self):
        problem = small_random_problem(
            0,
            platform_class=PlatformClass.FULLY_HOMOGENEOUS,
            stage_range=(2, 2),  # keep the full enumeration small
        )
        full = exact.brute_force_minimize(problem, Criterion.PERIOD)
        n = int(full.stats["n_mappings"])
        meter = SolveBudget(max_evaluations=max(1, n // 2)).meter()
        truncated = exact.brute_force_minimize(
            problem, Criterion.PERIOD, budget=meter
        )
        assert not truncated.optimal
        assert truncated.objective >= full.objective - 1e-12

    def test_brute_force_without_incumbent_raises_solver_error(self):
        """A budget-truncated enumeration that found nothing must not
        claim infeasibility — the problem may well be feasible."""
        from repro.core.exceptions import SolverError

        problem = small_random_problem(
            0,
            platform_class=PlatformClass.FULLY_HOMOGENEOUS,
            stage_range=(2, 2),
        )
        meter = SolveBudget(max_evaluations=1).meter()
        with pytest.raises(SolverError, match="budget exhausted"):
            exact.brute_force_minimize(
                problem,
                Criterion.PERIOD,
                Thresholds(period=1e-12),
                budget=meter,
            )

    def test_unbudgeted_paths_are_unchanged(self):
        """budget=None keeps the historical behavior bit-identical."""
        problem = hard_problem(7)
        assert (
            minimize_period(problem, method="heuristic").objective
            == minimize_period(problem, method="heuristic", budget=None).objective
        )
