"""The achieved-values field of :class:`SolveTelemetry`: populated by
strategy runs (members included, so portfolios can contribute every
feasible member point to a front merge) and JSON-round-trippable."""

from repro.generators import small_random_problem
from repro.strategies import (
    SolveBudget,
    SolveTelemetry,
    get_strategy,
    parse_strategy,
)


def problem():
    return small_random_problem(0, n_apps=2)


class TestValuesField:
    def test_round_trip(self):
        rec = SolveTelemetry(
            strategy="greedy",
            status="ok",
            wall_time=0.1,
            values=(1.0, 2.0, 3.0),
        )
        assert SolveTelemetry.from_dict(rec.to_dict()) == rec
        assert rec.to_dict()["values"] == [1.0, 2.0, 3.0]

    def test_unset_values_omitted_and_parse_back(self):
        rec = SolveTelemetry(strategy="greedy", status="error", wall_time=0.0)
        payload = rec.to_dict()
        assert "values" not in payload
        assert SolveTelemetry.from_dict(payload).values is None

    def test_legacy_payload_without_values_parses(self):
        rec = SolveTelemetry.from_dict(
            {"strategy": "greedy", "status": "ok", "wall_time": 0.0}
        )
        assert rec.values is None


class TestStrategyRunsPopulateValues:
    def test_atomic_strategy_carries_achieved_values(self):
        result = get_strategy("greedy").run(problem(), "period")
        assert result.status == "ok"
        solution = result.solution
        assert result.telemetry.values == (
            solution.values.period,
            solution.values.latency,
            solution.values.energy,
        )

    def test_portfolio_members_carry_values(self):
        result = parse_strategy("portfolio(greedy,local_search)").run(
            problem(),
            "period",
            budget=SolveBudget(max_evaluations=2000, seed=0),
        )
        assert result.status == "ok"
        assert result.telemetry.values is not None
        members = result.telemetry.members
        assert members, "portfolio telemetry must include member records"
        for member in members:
            if member.ok:
                assert member.values is not None
                assert len(member.values) == 3
