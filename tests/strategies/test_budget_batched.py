"""Budget accounting for batched scoring: a batch of N candidates counts
as N evaluations, and batched/scalar modes stop at the same budget."""

import time

import pytest

from repro import Criterion, PlatformClass
from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.algorithms.heuristics import local_search
from repro.generators import small_random_problem
from repro.strategies import BudgetMeter, SolveBudget

HET = PlatformClass.FULLY_HETEROGENEOUS


class TestReserve:
    def test_unlimited_grants_everything(self):
        meter = BudgetMeter(SolveBudget())
        assert meter.reserve(1000) == 1000
        assert meter.n_evaluations == 1000
        assert not meter.exhausted

    def test_cap_truncates_and_exhausts(self):
        meter = BudgetMeter(SolveBudget(max_evaluations=10))
        assert meter.reserve(7) == 7
        assert not meter.exhausted
        assert meter.reserve(7) == 3
        assert meter.exhausted
        assert meter.n_evaluations == 10
        assert meter.reserve(1) == 0

    def test_exact_fit_does_not_exhaust(self):
        """Consuming exactly the cap mirrors N successful ticks: the
        meter only exhausts on the *next* request, like the scalar
        loop's failing tick."""
        meter = BudgetMeter(SolveBudget(max_evaluations=5))
        assert meter.reserve(5) == 5
        assert not meter.exhausted
        assert meter.reserve(1) == 0
        assert meter.exhausted

    def test_zero_and_negative_are_noops(self):
        meter = BudgetMeter(SolveBudget(max_evaluations=5))
        assert meter.reserve(0) == 0
        assert meter.reserve(-3) == 0
        assert meter.n_evaluations == 0
        assert not meter.exhausted

    def test_matches_tick_by_tick_accounting(self):
        for batch_sizes in ([4, 4, 4], [1] * 12, [5, 8], [12]):
            batched = BudgetMeter(SolveBudget(max_evaluations=10))
            scalar = BudgetMeter(SolveBudget(max_evaluations=10))
            for n in batch_sizes:
                granted = batched.reserve(n)
                ticked = 0
                for _ in range(n):
                    if not scalar.tick():
                        break
                    ticked += 1
                assert granted == ticked
            assert batched.n_evaluations == scalar.n_evaluations

    def test_expired_deadline_grants_nothing(self):
        meter = BudgetMeter(SolveBudget(time_limit=1e-9))
        time.sleep(0.002)
        assert meter.reserve(4) == 0  # pre-grant deadline check
        assert meter.exhausted
        assert meter.reserve(4) == 0


class TestBatchedScalarBudgetParity:
    @pytest.mark.parametrize("cap", [13, 50, 200])
    def test_hill_climb_stops_at_the_same_budget(self, cap):
        problem = small_random_problem(
            11, platform_class=HET, n_modes=2, stage_range=(2, 4)
        )
        start = greedy_interval_period(problem).mapping
        outcomes = {}
        for engine in ("batched", "scalar"):
            meter = BudgetMeter(SolveBudget(max_evaluations=cap))
            solution = hill_climb(
                problem,
                start,
                Criterion.PERIOD,
                budget=meter,
                engine=engine,
            )
            outcomes[engine] = (
                meter.n_evaluations,
                meter.exhausted,
                solution.mapping,
                solution.objective,
                solution.stats,
            )
        assert outcomes["batched"] == outcomes["scalar"]

    @pytest.mark.parametrize("cap", [60, 400])
    def test_portfolio_stops_at_the_same_budget(self, cap, monkeypatch):
        """The satellite regression: a portfolio under ``max_evals``
        consumes the same budget and returns the same objective whether
        the members score batched or scalar."""
        problem = small_random_problem(
            12, platform_class=HET, n_modes=2, stage_range=(2, 4)
        )
        from repro.service import solve_batch

        budget = SolveBudget(max_evaluations=cap, seed=0)
        results = {}
        for engine in ("batched", "scalar"):
            monkeypatch.setattr(local_search, "DEFAULT_ENGINE", engine)
            item = solve_batch(
                [problem],
                "period",
                strategy="portfolio(greedy,local_search,annealing)",
                budget=budget,
            ).items[0]
            results[engine] = (
                item.objective,
                item.telemetry.evaluations,
                item.telemetry.budget_exhausted,
                tuple(
                    (m.strategy, m.evaluations, m.budget_exhausted)
                    for m in item.telemetry.members
                ),
            )
        assert results["batched"] == results["scalar"]
        assert results["batched"][1] <= cap

    def test_solve_one_heuristic_counts_true_candidates(self):
        """The legacy heuristic path exhausts exactly at the cap with
        batched scoring -- a batch is never under-counted as 1."""
        problem = small_random_problem(
            13, platform_class=HET, n_modes=2
        )
        meter_out = {}
        for engine in ("batched", "scalar"):
            meter = BudgetMeter(SolveBudget(max_evaluations=40))
            start = greedy_interval_period(problem, budget=meter)
            hill_climb(
                problem,
                start.mapping,
                Criterion.PERIOD,
                budget=meter,
                engine=engine,
            )
            meter_out[engine] = (meter.n_evaluations, meter.exhausted)
        assert meter_out["batched"] == meter_out["scalar"]
        assert meter_out["batched"][0] == 40
        assert meter_out["batched"][1]
