"""Property-based tests of the Hungarian matching substrate."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import solve_assignment
from repro.matching.hungarian import brute_force_assignment

finite_costs = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def cost_matrices(draw, max_n=4, max_extra=2, forbid_prob=0.0):
    n = draw(st.integers(1, max_n))
    m = n + draw(st.integers(0, max_extra))
    rows = []
    for _ in range(n):
        row = draw(st.lists(finite_costs, min_size=m, max_size=m))
        if forbid_prob > 0:
            mask = draw(
                st.lists(
                    st.booleans(), min_size=m, max_size=m
                )
            )
            row = [
                math.inf if flag and draw(st.booleans()) else v
                for v, flag in zip(row, mask)
            ]
        rows.append(row)
    return rows


@given(cost_matrices())
@settings(max_examples=80, deadline=None)
def test_matches_brute_force(cost):
    fast = solve_assignment(cost)
    slow = brute_force_assignment(cost)
    assert fast is not None and slow is not None
    assert math.isclose(fast.total_cost, slow.total_cost, rel_tol=1e-9, abs_tol=1e-9)


@given(cost_matrices(forbid_prob=0.5))
@settings(max_examples=80, deadline=None)
def test_matches_brute_force_with_forbidden(cost):
    fast = solve_assignment(cost)
    slow = brute_force_assignment(cost)
    if slow is None:
        assert fast is None
    else:
        assert fast is not None
        assert math.isclose(
            fast.total_cost, slow.total_cost, rel_tol=1e-9, abs_tol=1e-9
        )


@given(cost_matrices())
@settings(max_examples=60, deadline=None)
def test_result_is_injective_and_cost_consistent(cost):
    result = solve_assignment(cost)
    assert result is not None
    assert len(set(result.row_to_col)) == len(cost)
    recomputed = sum(cost[i][j] for i, j in enumerate(result.row_to_col))
    assert math.isclose(result.total_cost, recomputed, rel_tol=1e-12)


@given(cost_matrices(), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_scaling_invariance(cost, factor):
    """Scaling all costs scales the optimum; the argmin is unchanged up to
    ties."""
    base = solve_assignment(cost)
    scaled = solve_assignment(
        [[c * factor for c in row] for row in cost]
    )
    assert base is not None and scaled is not None
    assert math.isclose(
        scaled.total_cost, base.total_cost * factor, rel_tol=1e-9, abs_tol=1e-9
    )
