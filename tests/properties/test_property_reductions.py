"""Property-based tests of the hardness reductions and source problems."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.reductions import (
    LatencyOneToOneReduction,
    PeriodIntervalReduction,
    ThreePartitionInstance,
    TriCriteriaOneToOneReduction,
    TwoPartitionInstance,
)

small_values = st.lists(
    st.integers(min_value=1, max_value=12), min_size=1, max_size=10
)


@given(small_values)
@settings(max_examples=80, deadline=None)
def test_two_partition_solver_sound_and_complete(values):
    """The subset-sum DP returns a valid certificate exactly when a brute
    force over subsets finds one."""
    import itertools

    inst = TwoPartitionInstance(values=tuple(values))
    subset = inst.solve()
    brute = any(
        2 * sum(values[i] for i in combo) == sum(values)
        for r in range(len(values) + 1)
        for combo in itertools.combinations(range(len(values)), r)
    )
    if subset is None:
        assert not brute
    else:
        assert inst.check(subset)


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_three_partition_generator_and_solver(m, seed):
    """Generated yes-instances are valid and the solver certifies them."""
    rng = np.random.default_rng(seed)
    from repro.algorithms.reductions import random_three_partition_yes_instance

    inst = random_three_partition_yes_instance(rng, m=m, bound=40)
    assert len(inst.values) == 3 * m
    assert sum(inst.values) == m * 40
    triples = inst.solve()
    assert triples is not None
    assert inst.check(triples)


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_theorem5_forward_transfer_is_tight(m, seed):
    """On every yes-instance the forward-transferred mapping achieves the
    target period exactly (each processor fully loaded)."""
    rng = np.random.default_rng(seed)
    from repro.algorithms.reductions import random_three_partition_yes_instance

    source = random_three_partition_yes_instance(rng, m=m, bound=24)
    red = PeriodIntervalReduction.build(source)
    triples = source.solve()
    assert triples is not None
    mapping = red.mapping_from_partition(triples)
    red.problem.check_mapping(mapping)
    assert math.isclose(red.forward_value(triples), red.target_period)
    # Backward transfer round-trips.
    recovered = red.partition_from_mapping(mapping)
    assert source.check(recovered)


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_theorem9_forward_transfer_is_tight(m, seed):
    rng = np.random.default_rng(seed)
    from repro.algorithms.reductions import random_three_partition_yes_instance

    source = random_three_partition_yes_instance(rng, m=m, bound=24)
    red = LatencyOneToOneReduction.build(source)
    triples = source.solve()
    assert triples is not None
    mapping = red.mapping_from_partition(triples)
    red.problem.check_mapping(mapping)
    assert math.isclose(red.forward_value(triples), red.target_latency)
    recovered = red.partition_from_mapping(mapping)
    assert source.check(recovered)


@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=4),
)
@settings(max_examples=20, deadline=None)
def test_theorem26_gadget_internal_consistency(values):
    """For every buildable source: thresholds are ordered as the proof
    requires (E° above E*, L° below L* = E*), residual caps hold, and the
    forward transfer of a solution (when one exists) meets all thresholds."""
    source = TwoPartitionInstance(values=tuple(values))
    try:
        red = TriCriteriaOneToOneReduction.build(source)
    except ValueError:
        assume(False)  # float precision refused the instance
        return
    assert red.thresholds.energy > red.base_energy
    assert red.thresholds.latency < red.base_latency
    assert red.thresholds.period == red.thresholds.latency
    subset = source.solve()
    if subset is not None:
        mapping = red.mapping_from_subset(subset)
        red.problem.check_mapping(mapping)
        v = red.problem.evaluate(mapping)
        assert v.meets(
            period=red.thresholds.period,
            latency=red.thresholds.latency,
            energy=red.thresholds.energy,
        )
        assert red.subset_from_mapping(mapping) == subset
