"""Property-based tests of the solvers: optimality against the exact
branch-and-bound oracle on randomly generated small instances, plus
structural invariants of the DP tables."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    MappingRule,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_latency_interval,
    minimize_period_interval,
    minimize_period_one_to_one,
    single_app_energy_table,
    single_app_latency_table,
    single_app_period_table,
)
from repro.algorithms.exact import exact_minimize

from .strategies import applications, bandwidths, speed_sets, speeds

MODELS = st.sampled_from(
    [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]
)


@given(
    apps=st.lists(applications(max_stages=3), min_size=1, max_size=2),
    speed=speeds,
    bw=bandwidths,
    model=MODELS,
    extra=st.integers(0, 1),
)
@settings(max_examples=30, deadline=None)
def test_theorem3_is_optimal(apps, speed, bw, model, extra):
    total = sum(a.n_stages for a in apps)
    assume(total <= 6)
    platform = Platform.fully_homogeneous(
        min(total + extra, 6), speeds=[speed], bandwidth=bw
    )
    problem = ProblemInstance(
        apps=tuple(apps), platform=platform, model=model
    )
    fast = minimize_period_interval(problem)
    exact = exact_minimize(problem, Criterion.PERIOD)
    assert math.isclose(fast.objective, exact.objective, rel_tol=1e-9)


@given(
    apps=st.lists(applications(max_stages=2), min_size=1, max_size=2),
    sets=st.lists(speed_sets(max_modes=1), min_size=7, max_size=7),
    bw=bandwidths,
    model=MODELS,
)
@settings(max_examples=30, deadline=None)
def test_theorem1_is_optimal(apps, sets, bw, model):
    total = sum(a.n_stages for a in apps)
    assume(total <= 4)
    platform = Platform.comm_homogeneous(sets[: total + 1], bandwidth=bw)
    problem = ProblemInstance(
        apps=tuple(apps),
        platform=platform,
        rule=MappingRule.ONE_TO_ONE,
        model=model,
    )
    fast = minimize_period_one_to_one(problem)
    exact = exact_minimize(problem, Criterion.PERIOD)
    assert math.isclose(fast.objective, exact.objective, rel_tol=1e-9)


@given(
    apps=st.lists(applications(max_stages=3), min_size=1, max_size=2),
    sets=st.lists(speed_sets(max_modes=1), min_size=4, max_size=4),
    bw=bandwidths,
)
@settings(max_examples=30, deadline=None)
def test_theorem12_is_optimal(apps, sets, bw):
    total = sum(a.n_stages for a in apps)
    assume(total <= 6)
    platform = Platform.comm_homogeneous(sets, bandwidth=bw)
    problem = ProblemInstance(apps=tuple(apps), platform=platform)
    fast = minimize_latency_interval(problem)
    exact = exact_minimize(problem, Criterion.LATENCY)
    assert math.isclose(fast.objective, exact.objective, rel_tol=1e-9)


@given(
    app=applications(max_stages=6),
    speed=speeds,
    bw=bandwidths,
    model=MODELS,
)
@settings(max_examples=40, deadline=None)
def test_period_table_monotone_and_reconstructible(app, speed, bw, model):
    table = single_app_period_table(app, app.n_stages, speed, bw, model)
    prev = math.inf
    for q in range(1, table.max_procs + 1):
        assert table.period(q) <= prev + 1e-12
        prev = table.period(q)
        intervals = table.reconstruct(q)
        assert intervals[0][0] == 0
        assert intervals[-1][1] == app.n_stages - 1
        assert len(intervals) <= q


@given(
    app=applications(max_stages=5),
    speed=speeds,
    bw=bandwidths,
    model=MODELS,
    slack=st.floats(min_value=1.0, max_value=3.0),
)
@settings(max_examples=40, deadline=None)
def test_latency_table_consistent_with_period_table(
    app, speed, bw, model, slack
):
    """With a period bound equal to the q-processor optimum (times slack),
    the latency DP must be feasible at q and its mapping must meet the
    bound."""
    p_table = single_app_period_table(app, app.n_stages, speed, bw, model)
    for q in (1, app.n_stages):
        bound = p_table.period(q) * slack
        l_table = single_app_latency_table(
            app, q, speed, bw, model, bound
        )
        assert math.isfinite(l_table.latency(q))


@given(
    app=applications(max_stages=4),
    modes=speed_sets(max_modes=3),
    bw=bandwidths,
    model=MODELS,
)
@settings(max_examples=40, deadline=None)
def test_energy_table_monotone_in_period_bound(app, modes, bw, model):
    """A looser period bound never increases the optimal energy."""
    from repro import EnergyModel

    em = EnergyModel(alpha=2.0)
    p_table = single_app_period_table(
        app, app.n_stages, modes[-1], bw, model
    )
    tight = p_table.period(app.n_stages)
    assume(math.isfinite(tight) and tight > 0)
    e_tight = single_app_energy_table(
        app, app.n_stages, modes, 0.0, bw, model, tight, em
    ).energy(app.n_stages)
    e_loose = single_app_energy_table(
        app, app.n_stages, modes, 0.0, bw, model, tight * 2, em
    ).energy(app.n_stages)
    assert e_loose <= e_tight + 1e-9


@given(
    app=applications(max_stages=3),
    modes=speed_sets(max_modes=2),
    bw=bandwidths,
)
@settings(max_examples=25, deadline=None)
def test_theorem18_matches_exact(app, modes, bw):
    from repro import EnergyModel

    model = CommunicationModel.OVERLAP
    em = EnergyModel(alpha=2.0)
    p_table = single_app_period_table(app, app.n_stages, modes[-1], bw, model)
    bound = p_table.period(app.n_stages) * 1.5
    assume(math.isfinite(bound) and bound > 0)
    platform = Platform.fully_homogeneous(
        app.n_stages, speeds=modes, bandwidth=bw
    )
    problem = ProblemInstance(
        apps=(app,), platform=platform, model=model, energy_model=em
    )
    table = single_app_energy_table(
        app, app.n_stages, modes, 0.0, bw, model, bound, em
    )
    if not math.isfinite(table.energy(app.n_stages)):
        return
    # Per-app bound is on the unweighted period.
    exact = exact_minimize(
        problem,
        Criterion.ENERGY,
        Thresholds(per_app_period=(bound,)),
    )
    assert math.isclose(
        table.energy(app.n_stages), exact.objective, rel_tol=1e-9
    )
