"""Property-based structural invariants of mappings and their evaluation."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assignment, CommunicationModel, Mapping, evaluate
from repro.core.evaluation import application_period, interval_costs

from .strategies import mapped_instances

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_enrolled_processors_bijective_with_assignments(instance):
    """No processor sharing: one assignment <-> one enrolled processor."""
    apps, platform, mapping = instance
    assert len(mapping.enrolled_processors) == len(mapping.assignments)


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_period_is_max_of_interval_cycles(instance):
    """The per-application period equals the max cycle-time over its
    intervals (Eq. (3)/(4) decomposition exposed by interval_costs)."""
    apps, platform, mapping = instance
    costs = interval_costs(apps, platform, mapping)
    for model in (OVERLAP, NO_OVERLAP):
        for a in mapping.applications:
            expected = max(
                c.cycle_time(model) for c in costs if c.app == a
            )
            got = application_period(apps, platform, mapping, a, model)
            assert math.isclose(got, expected, rel_tol=1e-12)


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_latency_is_sum_of_costs(instance):
    """Eq. (5): latency = input comm + sum over intervals of comp + out."""
    apps, platform, mapping = instance
    costs = interval_costs(apps, platform, mapping)
    v = evaluate(apps, platform, mapping)
    for a in mapping.applications:
        app_costs = [c for c in costs if c.app == a]
        expected = app_costs[0].t_in + sum(
            c.t_comp + c.t_out for c in app_costs
        )
        assert math.isclose(v.latencies[a], expected, rel_tol=1e-12)


@given(mapped_instances())
@settings(max_examples=40, deadline=None)
def test_merging_all_intervals_never_needs_more_processors(instance):
    """Collapsing each application onto its first processor is always a
    valid mapping (fewer resources, still covering)."""
    apps, platform, mapping = instance
    collapsed = []
    for a in mapping.applications:
        parts = mapping.for_app(a)
        collapsed.append(
            Assignment(
                app=a,
                interval=(0, apps[a].n_stages - 1),
                proc=parts[0].proc,
                speed=parts[0].speed,
            )
        )
    merged = Mapping.from_assignments(collapsed)
    merged.validate(apps, platform)
    # Merging removes all internal communications: latency cannot suffer
    # from extra transfer terms beyond the speed effect -- with the SAME
    # speed on the merged processor, latency never increases when links
    # are homogeneous and all interval speeds equal the first one.
    if all(
        all(x.speed == mapping.for_app(a)[0].speed for x in mapping.for_app(a))
        for a in mapping.applications
    ):
        v_split = evaluate(apps, platform, mapping)
        v_merged = evaluate(apps, platform, merged)
        for a in mapping.applications:
            assert v_merged.latencies[a] <= v_split.latencies[a] + 1e-9


@given(mapped_instances(max_apps=1, max_stages=4))
@settings(max_examples=40, deadline=None)
def test_one_to_one_is_interval_special_case(instance):
    """Slicing every interval into singleton intervals (when enough
    processors exist) yields a valid one-to-one mapping whose latency obeys
    Eq. (5) with every communication paid."""
    apps, platform, mapping = instance
    app = apps[0]
    if platform.n_processors < app.n_stages:
        return
    singles = Mapping.from_assignments(
        Assignment(
            app=0,
            interval=(k, k),
            proc=k,
            speed=platform.processor(k).speeds[0],
        )
        for k in range(app.n_stages)
    )
    singles.validate(apps[:1], platform)
    assert singles.is_one_to_one()
    v = evaluate(apps[:1], platform, singles)
    bw = platform.default_bandwidth
    speed = platform.processor(0).speeds[0]
    expected = app.input_data_size / bw + sum(
        s.work / speed + s.output_size / bw for s in app.stages
    )
    assert math.isclose(v.latencies[0], expected, rel_tol=1e-12)
