"""Property-based tests of Algorithm 2 (greedy processor allocation)."""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.processor_allocation import allocate_processors


@st.composite
def value_tables(draw):
    """Random non-increasing per-application value tables."""
    n_apps = draw(st.integers(2, 4))
    n_procs = draw(st.integers(n_apps, n_apps + 5))
    tables = []
    for _ in range(n_apps):
        raw = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
                min_size=n_procs,
                max_size=n_procs,
            )
        )
        tables.append(sorted(raw, reverse=True))
    return n_apps, n_procs, tables


@given(value_tables())
@settings(max_examples=60, deadline=None)
def test_greedy_matches_exhaustive(setup):
    """Algorithm 2's greedy distribution is optimal for any non-increasing
    value tables (the Theorem 3 exchange argument)."""
    n_apps, n_procs, tables = setup

    def value(a, q):
        return tables[a][min(q, n_procs) - 1]

    greedy = allocate_processors(n_apps, n_procs, value)
    best = math.inf
    for counts in itertools.product(range(1, n_procs + 1), repeat=n_apps):
        if sum(counts) > n_procs:
            continue
        best = min(best, max(value(a, q) for a, q in enumerate(counts)))
    assert math.isclose(greedy.objective, best, rel_tol=1e-12)


@given(value_tables())
@settings(max_examples=60, deadline=None)
def test_allocation_structure(setup):
    n_apps, n_procs, tables = setup

    def value(a, q):
        return tables[a][min(q, n_procs) - 1]

    result = allocate_processors(n_apps, n_procs, value)
    assert len(result.counts) == n_apps
    assert all(c >= 1 for c in result.counts)
    assert sum(result.counts) <= n_procs
    # Reported objective is consistent with the counts.
    recomputed = max(value(a, q) for a, q in enumerate(result.counts))
    assert math.isclose(result.objective, recomputed, rel_tol=1e-12)


@given(value_tables(), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_more_processors_never_hurt(setup, extra):
    n_apps, n_procs, tables = setup

    def value(a, q):
        return tables[a][min(q, n_procs) - 1]

    small = allocate_processors(n_apps, n_procs, value)
    large = allocate_processors(n_apps, n_procs + extra, value)
    assert large.objective <= small.objective + 1e-12
