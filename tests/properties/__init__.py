"""Test package marker (keeps relative imports like tests.properties.strategies importable)."""
