"""Property-based tests of the cost model invariants (Sections 3.4-3.5)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CommunicationModel, EnergyModel, evaluate
from repro.core.evaluation import application_latency, application_period
from repro.core.mapping import run_at_max_speed, run_at_min_speed

from .strategies import mapped_instances

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_mapping_is_valid_by_construction(instance):
    apps, platform, mapping = instance
    mapping.validate(apps, platform)


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_no_overlap_period_at_least_overlap(instance):
    """Serializing the three activities can only lengthen the cycle."""
    apps, platform, mapping = instance
    for a in mapping.applications:
        t_o = application_period(apps, platform, mapping, a, OVERLAP)
        t_n = application_period(apps, platform, mapping, a, NO_OVERLAP)
        assert t_n >= t_o - 1e-12


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_latency_at_least_period_overlap(instance):
    """Under the overlap model the latency of an application is at least
    its period (the bottleneck resource works the whole cycle on each data
    set, and the latency sums every activity)."""
    apps, platform, mapping = instance
    for a in mapping.applications:
        t = application_period(apps, platform, mapping, a, OVERLAP)
        l = application_latency(apps, platform, mapping, a)
        assert l >= t - 1e-9


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_latency_model_independent(instance):
    apps, platform, mapping = instance
    v_o = evaluate(apps, platform, mapping, model=OVERLAP)
    v_n = evaluate(apps, platform, mapping, model=NO_OVERLAP)
    assert v_o.latency == v_n.latency
    assert v_o.latencies == v_n.latencies


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_faster_speeds_never_hurt_performance(instance):
    """The paper's Section 2 observation: without an energy criterion,
    running every processor at top speed can only improve period and
    latency."""
    apps, platform, mapping = instance
    fast = run_at_max_speed(mapping, platform)
    for model in (OVERLAP, NO_OVERLAP):
        v = evaluate(apps, platform, mapping, model=model)
        v_fast = evaluate(apps, platform, fast, model=model)
        assert v_fast.period <= v.period + 1e-9
        assert v_fast.latency <= v.latency + 1e-9


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_slower_speeds_never_cost_energy(instance):
    apps, platform, mapping = instance
    slow = run_at_min_speed(mapping, platform)
    v = evaluate(apps, platform, mapping)
    v_slow = evaluate(apps, platform, slow)
    assert v_slow.energy <= v.energy + 1e-9


@given(mapped_instances(), st.floats(min_value=1.1, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_energy_monotone_in_alpha_above_unit_speeds(instance, alpha):
    """For speeds >= 1 the dynamic energy grows with alpha."""
    apps, platform, mapping = instance
    if any(x.speed < 1.0 for x in mapping.assignments):
        return
    e_low = evaluate(apps, platform, mapping, energy_model=EnergyModel(alpha=alpha)).energy
    e_high = evaluate(
        apps, platform, mapping, energy_model=EnergyModel(alpha=alpha + 0.5)
    ).energy
    assert e_high >= e_low - 1e-9


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_global_objectives_are_weighted_maxima(instance):
    apps, platform, mapping = instance
    v = evaluate(apps, platform, mapping)
    expected_t = max(apps[a].weight * v.periods[a] for a in v.periods)
    expected_l = max(apps[a].weight * v.latencies[a] for a in v.latencies)
    assert v.period == expected_t
    assert v.latency == expected_l


@given(mapped_instances())
@settings(max_examples=60, deadline=None)
def test_energy_is_sum_over_enrolled(instance):
    apps, platform, mapping = instance
    v = evaluate(apps, platform, mapping)
    expected = sum(
        platform.processor(u).static_energy
        + mapping.speed_of_proc(u) ** 2.0
        for u in mapping.enrolled_processors
    )
    assert math.isclose(v.energy, expected, rel_tol=1e-12)
