"""Shared hypothesis strategies for the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Application, Assignment, Mapping, Platform
from repro.core import processors_from_speed_sets

#: Bounded positive floats that keep all arithmetic well-conditioned.
works = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
datas = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
speeds = st.floats(min_value=0.5, max_value=10.0, allow_nan=False)
bandwidths = st.floats(min_value=0.5, max_value=10.0, allow_nan=False)
weights = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@st.composite
def applications(draw, max_stages: int = 5):
    """A random well-formed application."""
    n = draw(st.integers(min_value=1, max_value=max_stages))
    return Application.from_lists(
        works=draw(st.lists(works, min_size=n, max_size=n)),
        output_sizes=draw(st.lists(datas, min_size=n, max_size=n)),
        input_data_size=draw(datas),
        weight=draw(weights),
    )


@st.composite
def speed_sets(draw, max_modes: int = 3):
    """A sorted set of 1..max_modes distinct positive speeds."""
    modes = draw(
        st.lists(speeds, min_size=1, max_size=max_modes, unique=True)
    )
    return tuple(sorted(modes))


@st.composite
def hom_platforms(draw, n_min: int = 1, n_max: int = 6):
    """A fully homogeneous platform."""
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    return Platform.fully_homogeneous(
        n, speeds=draw(speed_sets()), bandwidth=draw(bandwidths)
    )


@st.composite
def _random_partitions(draw, apps):
    """Random interval partition of each application's stages."""
    partitions = []
    for app in apps:
        cuts = sorted(
            draw(
                st.sets(
                    st.integers(1, app.n_stages - 1),
                    max_size=app.n_stages - 1,
                )
            )
        ) if app.n_stages > 1 else []
        bounds = [0, *cuts, app.n_stages]
        partitions.append(
            [(bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)]
        )
    return partitions


def _place(draw, apps, platform, partitions):
    """Place the partitions on distinct random processors, random modes."""
    n_procs = platform.n_processors
    procs = draw(st.permutations(range(n_procs)))
    assignments = []
    idx = 0
    for a, intervals in enumerate(partitions):
        for iv in intervals:
            u = procs[idx]
            idx += 1
            speed = draw(st.sampled_from(platform.processor(u).speeds))
            assignments.append(
                Assignment(app=a, interval=iv, proc=u, speed=speed)
            )
    return Mapping.from_assignments(assignments)


@st.composite
def mapped_instances(draw, max_apps: int = 2, max_stages: int = 4):
    """A (apps, platform, valid interval mapping) triple.

    The mapping partitions each application at random cut points, places
    intervals on distinct random processors and picks a random mode each.
    """
    n_apps = draw(st.integers(min_value=1, max_value=max_apps))
    apps = tuple(draw(applications(max_stages)) for _ in range(n_apps))
    partitions = draw(_random_partitions(apps))
    total_intervals = sum(len(p) for p in partitions)
    n_procs = total_intervals + draw(st.integers(0, 2))
    platform = Platform.fully_homogeneous(
        n_procs, speeds=draw(speed_sets()), bandwidth=draw(bandwidths)
    )
    return apps, platform, _place(draw, apps, platform, partitions)


@st.composite
def one_to_one_mapped_instances(draw, max_apps: int = 2, max_stages: int = 4):
    """A (apps, platform, valid one-to-one mapping) triple.

    Every interval is a single stage (the one-to-one rule), placed on
    distinct random processors at random modes.
    """
    n_apps = draw(st.integers(min_value=1, max_value=max_apps))
    apps = tuple(draw(applications(max_stages)) for _ in range(n_apps))
    partitions = [
        [(k, k) for k in range(app.n_stages)] for app in apps
    ]
    total_intervals = sum(len(p) for p in partitions)
    n_procs = total_intervals + draw(st.integers(0, 2))
    platform = Platform.fully_homogeneous(
        n_procs, speeds=draw(speed_sets()), bandwidth=draw(bandwidths)
    )
    return apps, platform, _place(draw, apps, platform, partitions)


@st.composite
def het_mapped_instances(draw, max_apps: int = 2, max_stages: int = 4):
    """Like :func:`mapped_instances` on a fully heterogeneous platform.

    Exercises every bandwidth-resolution path: explicit processor-pair
    links, per-application virtual in/out links, per-application
    bandwidths and the platform default.
    """
    n_apps = draw(st.integers(min_value=1, max_value=max_apps))
    apps = tuple(draw(applications(max_stages)) for _ in range(n_apps))
    partitions = draw(_random_partitions(apps))
    total_intervals = sum(len(p) for p in partitions)
    n_procs = total_intervals + draw(st.integers(0, 2))

    speed_set_list = [draw(speed_sets()) for _ in range(n_procs)]
    pairs = [(u, v) for u in range(n_procs) for v in range(u + 1, n_procs)]
    links = {
        pair: draw(bandwidths)
        for pair in draw(
            st.lists(st.sampled_from(pairs), unique=True, max_size=4)
        )
    } if pairs else {}
    in_links = {
        (a, u): draw(bandwidths)
        for a in range(n_apps)
        for u in range(n_procs)
        if draw(st.booleans())
    }
    out_links = {
        (a, u): draw(bandwidths)
        for a in range(n_apps)
        for u in range(n_procs)
        if draw(st.booleans())
    }
    app_bandwidths = {
        a: draw(bandwidths)
        for a in range(n_apps)
        if draw(st.booleans())
    }
    platform = Platform(
        processors=processors_from_speed_sets(speed_set_list),
        default_bandwidth=draw(bandwidths),
        links=links,
        in_links=in_links,
        out_links=out_links,
        app_bandwidths=app_bandwidths,
    )
    return apps, platform, _place(draw, apps, platform, partitions)
