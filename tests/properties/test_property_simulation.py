"""Property-based validation of the simulator against the analytic model:
for random instances and random valid mappings, the simulated steady state
must reproduce Equations (3)/(4) and (5) exactly."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CommunicationModel
from repro.core.evaluation import application_latency, application_period
from repro.simulation import simulate

from .strategies import mapped_instances

MODELS = st.sampled_from(
    [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]
)


@given(mapped_instances(), MODELS)
@settings(max_examples=50, deadline=None)
def test_simulated_period_matches_analytic(instance, model):
    apps, platform, mapping = instance
    result = simulate(apps, platform, mapping, 200, model=model)
    for a in mapping.applications:
        analytic = application_period(apps, platform, mapping, a, model)
        measured = result.measured_period(a)
        assert math.isclose(measured, analytic, rel_tol=1e-9, abs_tol=1e-9)


@given(mapped_instances(), MODELS)
@settings(max_examples=50, deadline=None)
def test_first_dataset_latency_matches_analytic(instance, model):
    apps, platform, mapping = instance
    result = simulate(apps, platform, mapping, 3, model=model)
    for a in mapping.applications:
        analytic = application_latency(apps, platform, mapping, a)
        assert math.isclose(
            result.measured_latency(a), analytic, rel_tol=1e-9, abs_tol=1e-9
        )


@given(mapped_instances(), MODELS)
@settings(max_examples=30, deadline=None)
def test_completions_strictly_ordered_and_gapped(instance, model):
    """Completions are non-decreasing and, in steady state, spaced by at
    least the bottleneck period (no resource can beat its own load)."""
    apps, platform, mapping = instance
    result = simulate(apps, platform, mapping, 100, model=model)
    for a in mapping.applications:
        comps = result.completions[a]
        assert all(x <= y + 1e-12 for x, y in zip(comps, comps[1:]))
        analytic = application_period(apps, platform, mapping, a, model)
        # Average spacing can never beat the analytic period.
        if len(comps) > 10 and analytic > 0:
            avg = (comps[-1] - comps[9]) / (len(comps) - 10)
            assert avg >= analytic * (1 - 1e-9)


@given(mapped_instances())
@settings(max_examples=20, deadline=None)
def test_trace_resource_exclusivity(instance):
    apps, platform, mapping = instance
    result = simulate(apps, platform, mapping, 20, keep_trace=True)
    by_resource = {}
    for r in result.trace:
        for res in r.resources:
            by_resource.setdefault(res, []).append((r.start, r.finish))
    for intervals in by_resource.values():
        intervals.sort()
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - 1e-9
