"""Tests of the zero-copy transport and the work-stealing pool.

Covers the ISSUE's acceptance bars directly: the array codec
round-trips every platform class and rule, solutions are byte-identical
across ``transport="shm"`` and ``transport="pickle"``, result ordering
is deterministic under work-stealing, shm segments never outlive their
batch (normal completion, worker crash, interrupts — see also the
autouse leak fixture in ``tests/conftest.py``), and a crashed worker is
contained to error items for the indices it held.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import CommunicationModel, MappingRule, PlatformClass
from repro.generators import small_random_problem
from repro.io import (
    SerializationError,
    problem_from_arrays,
    problem_to_arrays,
    problem_to_dict,
)
from repro.service import solve_batch, solve_one
from repro.service.pool import run_work_stealing
from repro.service.transport import (
    SHM_AUTO_MIN_BYTES,
    ShmBatch,
    ShmReader,
    batch_payload_bytes,
    resolve_transport,
    shm_available,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

ALL_CLASSES = list(PlatformClass)
ALL_RULES = [MappingRule.ONE_TO_ONE, MappingRule.INTERVAL]


def _shm_entries():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return set()
    return {p.name for p in shm_dir.glob("repro-shm-*")}


def _solve_config(**overrides):
    config = {
        "objective": "period",
        "method": "registry",
        "thresholds": None,
        "strategy": None,
        "budget": None,
        "problem": None,
    }
    config.update(overrides)
    return config


class TestArrayCodec:
    @pytest.mark.parametrize("platform_class", ALL_CLASSES)
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_round_trip_all_classes_and_rules(self, platform_class, rule):
        problem = small_random_problem(
            7, platform_class=platform_class, rule=rule, n_apps=2
        )
        meta, arrays = problem_to_arrays(problem)
        rebuilt = problem_from_arrays(meta, arrays)
        # Dict form is the canonical content fingerprint (it feeds the
        # cache key): identical dicts mean identical instances.
        assert problem_to_dict(rebuilt) == problem_to_dict(problem)

    @pytest.mark.parametrize(
        "model", [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]
    )
    def test_round_trip_preserves_evaluation(self, model, fig1_problem):
        problem = fig1_problem
        problem = type(problem)(
            apps=problem.apps, platform=problem.platform, model=model
        )
        rebuilt = problem_from_arrays(*problem_to_arrays(problem))
        solution = solve_one(problem, "period")
        # The solved mapping must evaluate bit-identically on the
        # rebuilt instance's kernel context.
        values = rebuilt.evaluation_context().evaluate(solution.mapping)
        assert (values.period, values.latency, values.energy) == (
            solution.values.period,
            solution.values.latency,
            solution.values.energy,
        )

    def test_kernel_views_attached(self):
        problem = small_random_problem(11, n_apps=2)
        meta, arrays = problem_to_arrays(problem)
        rebuilt = problem_from_arrays(meta, arrays, attach_kernel_views=True)
        for app in rebuilt.apps:
            attached = getattr(app, "_kernel_arrays", None)
            assert attached is not None
            prefix, delta = attached
            assert not prefix.flags.writeable
            assert not delta.flags.writeable
            assert prefix.shape == (app.n_stages + 1,)

    def test_array_count_mismatch_raises(self):
        problem = small_random_problem(1)
        meta, arrays = problem_to_arrays(problem)
        with pytest.raises(SerializationError):
            problem_from_arrays(meta, arrays[:-1])

    def test_schema_mismatch_raises(self):
        problem = small_random_problem(1)
        meta, arrays = problem_to_arrays(problem)
        meta = dict(meta, schema="bogus-schema")
        with pytest.raises(SerializationError):
            problem_from_arrays(meta, arrays)


class TestResolveTransport:
    def test_unknown_value_raises(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("carrier-pigeon", [], None)

    def test_explicit_pickle_wins(self):
        problems = [small_random_problem(0)]
        assert resolve_transport("pickle", problems, None) == "pickle"

    def test_shared_instance_uses_pickle_once_path(self):
        problem = small_random_problem(0)
        assert resolve_transport("shm", [problem] * 4, problem) == "pickle"
        assert resolve_transport("auto", [problem] * 4, problem) == "pickle"

    @needs_shm
    def test_auto_uses_shm_above_threshold(self):
        problems = [small_random_problem(seed, n_apps=2) for seed in range(8)]
        assert batch_payload_bytes(problems) >= SHM_AUTO_MIN_BYTES
        assert resolve_transport("auto", problems, None) == "shm"

    @needs_shm
    def test_auto_uses_pickle_below_threshold(self):
        problems = [small_random_problem(0)]
        if batch_payload_bytes(problems) < SHM_AUTO_MIN_BYTES:
            assert resolve_transport("auto", problems, None) == "pickle"


@needs_shm
class TestShmLifecycle:
    def test_pack_read_unlink(self):
        problems = [small_random_problem(seed, n_apps=2) for seed in range(3)]
        batch = ShmBatch.pack(problems)
        try:
            assert batch.name in _shm_entries()
            assert len(batch.descriptors) == 3
            reader = ShmReader(batch.name)
            for problem, descriptor in zip(problems, batch.descriptors):
                decoded = reader.decode(descriptor)
                assert problem_to_dict(decoded) == problem_to_dict(problem)
            reader.close()
        finally:
            batch.close_and_unlink()
        assert batch.name not in _shm_entries()

    def test_unlink_is_idempotent(self):
        batch = ShmBatch.pack([small_random_problem(0)])
        batch.close_and_unlink()
        batch.close_and_unlink()  # second call must not raise
        assert batch.name not in _shm_entries()

    def test_normal_batch_completion_leaves_no_segment(self):
        problems = [small_random_problem(seed) for seed in range(6)]
        before = _shm_entries()
        result = solve_batch(problems, workers=2, transport="shm")
        assert result.transport == "shm"
        assert result.n_ok == len(problems)
        assert _shm_entries() == before

    def test_worker_crash_leaves_no_segment(self):
        problems = [small_random_problem(seed) for seed in range(6)]
        before = _shm_entries()
        batch = ShmBatch.pack(problems)
        try:
            config = _solve_config(
                shm_descriptors=batch.descriptors, _crash_on_index=2
            )
            jobs = [(i, None) for i in range(len(problems))]
            items, stats = run_work_stealing(
                jobs, config, 2, 1, shm_name=batch.name
            )
        finally:
            batch.close_and_unlink()
        assert _shm_entries() == before
        assert stats.n_crashed == 1
        assert [item.index for item in items] == list(range(len(problems)))
        crashed = [item for item in items if item.status == "error"]
        assert crashed and all("died" in item.error for item in crashed)
        # The surviving worker drains the rest of the queue.
        assert sum(1 for item in items if item.status == "ok") >= 4

    def test_keyboard_interrupt_unlinks_segment(self, monkeypatch):
        problems = [small_random_problem(seed) for seed in range(4)]
        before = _shm_entries()

        def _interrupt(*args, **kwargs):
            # The pool dies mid-batch; solve_batch's finally must still
            # unlink the segment it packed.
            assert len(_shm_entries() - before) == 1
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.service.batch.run_work_stealing", _interrupt
        )
        with pytest.raises(KeyboardInterrupt):
            solve_batch(problems, workers=2, transport="shm")
        assert _shm_entries() == before


class TestTransportEquivalence:
    @pytest.mark.parametrize("platform_class", ALL_CLASSES)
    def test_byte_identical_solutions(self, platform_class):
        problems = [
            small_random_problem(
                seed,
                platform_class=platform_class,
                rule=MappingRule.INTERVAL,
                n_apps=2,
            )
            for seed in range(6)
        ]
        sequential = solve_batch(problems, objective="period")
        pickled = solve_batch(
            problems, objective="period", workers=2, transport="pickle"
        )
        results = [sequential, pickled]
        if shm_available():
            shm = solve_batch(
                problems, objective="period", workers=2, transport="shm"
            )
            assert shm.transport == "shm"
            results.append(shm)
        reference = sequential.items
        for result in results[1:]:
            for ref, item in zip(reference, result.items):
                assert item.index == ref.index
                assert item.status == ref.status
                if ref.solution is None:
                    assert item.solution is None
                    continue
                assert item.solution.mapping == ref.solution.mapping
                assert item.solution.objective == ref.solution.objective
                assert item.solution.values == ref.solution.values

    @needs_shm
    def test_shm_job_payload_is_tiny(self):
        problems = [small_random_problem(seed, n_apps=2) for seed in range(8)]
        shm = solve_batch(problems, workers=2, transport="shm")
        pickled = solve_batch(problems, workers=2, transport="pickle")
        assert (
            shm.stats["bytes_pickled_per_job"]
            <= 0.10 * pickled.stats["bytes_pickled_per_job"]
        )

    def test_transport_reported_on_result(self):
        problems = [small_random_problem(seed) for seed in range(3)]
        assert solve_batch(problems).transport == "inline"
        assert (
            solve_batch(problems, workers=2, transport="pickle").transport
            == "pickle"
        )


class TestWorkStealingPool:
    def test_deterministic_ordering_per_job_chunks(self):
        problems = [small_random_problem(seed) for seed in range(10)]
        # chunksize=1 maximizes stealing; ordering must still hold.
        result = solve_batch(
            problems, workers=3, chunksize=1, transport="pickle"
        )
        assert [item.index for item in result.items] == list(range(10))
        assert result.n_ok == 10

    def test_error_containment_per_item(self):
        problems = [small_random_problem(seed) for seed in range(4)]
        bad = problems[1]
        object.__setattr__(bad.apps[0], "_work_prefix", None)  # poison
        config = _solve_config()
        jobs = list(enumerate(problems))
        items, _stats = run_work_stealing(jobs, config, 2, 1)
        # A poisoned instance fails its own item; nothing else.
        assert [item.index for item in items] == [0, 1, 2, 3]
        assert sum(1 for item in items if item.status != "ok") <= 1

    def test_crash_containment_without_shm(self):
        problems = [small_random_problem(seed) for seed in range(6)]
        config = _solve_config(_crash_on_index=0)
        jobs = list(enumerate(problems))
        items, stats = run_work_stealing(jobs, config, 2, 1)
        assert stats.n_crashed == 1
        assert items[0].status == "error"
        assert sum(1 for item in items if item.status == "ok") >= 4

    def test_worker_churn_between_chunks_loses_nothing(self):
        """`maxtasksperchild`-style churn: a worker that dies *between*
        chunks (its finished results already flushed) must cost zero
        items — the unclaimed chunks drain to the surviving workers.

        Complements ``test_crash_containment_without_shm``, which kills
        a worker *mid*-chunk and rightly loses that chunk's items.
        """
        problems = [small_random_problem(seed) for seed in range(8)]
        # The worker that completes the chunk holding index 1 exits
        # hard (code 9) right after streaming that chunk's results.
        config = _solve_config(_exit_after_index=1)
        jobs = list(enumerate(problems))
        items, stats = run_work_stealing(jobs, config, 2, 2)
        assert stats.n_crashed == 1
        assert [item.index for item in items] == list(range(8))
        errors = [item for item in items if item.status == "error"]
        assert errors == []
        assert all(item.status == "ok" for item in items)

    def test_stats_count_job_bytes(self):
        problems = [small_random_problem(seed) for seed in range(5)]
        result = solve_batch(problems, workers=2, transport="pickle")
        assert result.stats["bytes_job_payload"] > 0
        assert result.stats["n_chunks"] >= 1
        assert result.stats["n_crashed_workers"] == 0
