"""The ``engine=`` parameter reaches every solve surface.

One seam (:func:`repro.algorithms.heuristics.local_search.using_engine` /
the per-worker default) is threaded through :func:`repro.service.solve_one`,
:func:`repro.service.solve_batch` (sequential and pooled),
:class:`repro.experiments.SolverSpec`, the daemon's
:class:`repro.server.SolveService` and ``/v1/healthz``.  Everything here
runs with the compiled engine's pure-Python test hook where the real
compiled path is wanted, and otherwise just asserts byte-identical
results and correct plumbing/restoration.
"""

import pytest

from repro.algorithms.heuristics import local_search
from repro.experiments.spec import CampaignSpecError, SolverSpec
from repro.generators import small_random_problem
from repro.service import solve_batch, solve_one

from ..kernel.test_neighborhood_property import forced_python_compiled


@pytest.fixture
def problems():
    return [small_random_problem(seed) for seed in range(4)]


class TestSolveOne:
    def test_engine_applies_and_restores_default(self, problems):
        before = local_search.DEFAULT_ENGINE
        with forced_python_compiled():
            a = solve_one(problems[0], "period", engine="compiled")
        b = solve_one(problems[0], "period")
        assert a.objective == b.objective
        assert a.mapping == b.mapping
        assert local_search.DEFAULT_ENGINE == before

    def test_unknown_engine_rejected(self, problems):
        with pytest.raises(ValueError, match="unknown neighborhood engine"):
            solve_one(problems[0], "period", engine="simd")

    def test_engine_with_strategy(self, problems):
        with forced_python_compiled():
            a = solve_one(
                problems[0], "period", strategy="local_search",
                engine="compiled",
            )
        b = solve_one(problems[0], "period", strategy="local_search")
        assert a.objective == b.objective


class TestSolveBatch:
    def test_sequential_engines_byte_identical(self, problems):
        base = solve_batch(problems, objective="period")
        with forced_python_compiled():
            comp = solve_batch(problems, objective="period", engine="compiled")
        scal = solve_batch(problems, objective="period", engine="scalar")
        for ref, c, s in zip(base.items, comp.items, scal.items):
            assert ref.solution.mapping == c.solution.mapping
            assert ref.solution.values == c.solution.values
            assert ref.solution.mapping == s.solution.mapping

    def test_unknown_engine_fails_fast_before_any_solve(self, problems):
        with pytest.raises(ValueError, match="unknown neighborhood engine"):
            solve_batch(problems, engine="simd", workers=4)

    def test_pooled_engine_reaches_workers(self, problems):
        # Without numba the workers downgrade compiled -> batched, which
        # is exactly the graceful-degradation contract: same solutions.
        base = solve_batch(problems, objective="period", workers=2)
        comp = solve_batch(
            problems, objective="period", workers=2, engine="compiled"
        )
        for ref, item in zip(base.items, comp.items):
            assert item.solution.mapping == ref.solution.mapping
            assert item.solution.values == ref.solution.values

    def test_pooled_shared_instance_engine(self, problems):
        shared = [problems[0]] * 4
        base = solve_batch(shared, objective="period", workers=2)
        comp = solve_batch(
            shared, objective="period", workers=2, engine="compiled"
        )
        assert [i.objective for i in base.items] == [
            i.objective for i in comp.items
        ]


class TestSolverSpec:
    def test_engine_round_trips(self):
        spec = SolverSpec.from_dict(
            {"name": "x", "strategy": "annealing", "engine": "compiled"}
        )
        assert spec.engine == "compiled"
        assert spec.to_dict()["engine"] == "compiled"

    def test_engine_omitted_keeps_digest_stable(self):
        # No engine pinned -> no key emitted -> pre-existing cache
        # digests (which hash to_dict) are unchanged.
        spec = SolverSpec.from_dict({"name": "y"})
        assert spec.engine is None
        assert "engine" not in spec.to_dict()

    def test_unknown_engine_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown engine"):
            SolverSpec.from_dict({"name": "z", "engine": "simd"})


class TestDaemon:
    def test_service_validates_engine(self):
        from repro.server import SolveService

        with pytest.raises(ValueError, match="unknown neighborhood engine"):
            SolveService(executor="thread", engine="simd")

    def test_healthz_reports_engines(self):
        from repro.client import SolveClient
        from repro.kernel import compiled
        from repro.server import ServerThread

        with ServerThread(
            port=0, concurrency=1, executor="thread", engine="scalar"
        ) as server:
            client = SolveClient(server.url)
            health = client.healthz()
            metrics = client.metrics()
        assert health["engine"] == "scalar"
        assert health["engines"] == ["batched", "scalar", "compiled"]
        assert health["compiled_available"] == compiled.available()
        assert health["numba"] == compiled.NUMBA_VERSION
        assert metrics["engine"] == "scalar"

    def test_healthz_defaults_to_library_default(self):
        from repro.client import SolveClient
        from repro.server import ServerThread

        with ServerThread(port=0, concurrency=1, executor="thread") as server:
            health = SolveClient(server.url).healthz()
        assert health["engine"] == local_search.DEFAULT_ENGINE

    def test_daemon_solves_with_engine(self):
        from repro.client import SolveClient
        from repro.server import ServerThread

        problem = small_random_problem(0)
        with ServerThread(
            port=0, concurrency=1, executor="thread", engine="compiled"
        ) as server:
            client = SolveClient(server.url, timeout=60.0)
            result = client.solve(problem, timeout=120)
        assert result.status == "ok"
        reference = solve_one(problem, "period")
        assert result.solution.objective == reference.objective
