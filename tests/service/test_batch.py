"""Tests for the batch solve service (``repro.service``)."""

import math

import pytest

from repro import MappingRule, PlatformClass, Thresholds
from repro.generators import small_random_problem
from repro.service import (
    BatchItem,
    dispatch_method,
    solve_batch,
    solve_one,
)
from repro.service.batch import _auto_chunksize
from repro.strategies import SolveBudget

ALL_CLASSES = list(PlatformClass)


def _problems(count, *, rule=MappingRule.INTERVAL, n_modes=1):
    return [
        small_random_problem(
            seed,
            platform_class=ALL_CLASSES[seed % len(ALL_CLASSES)],
            rule=rule,
            n_modes=n_modes,
        )
        for seed in range(count)
    ]


class TestDispatch:
    def test_polynomial_cell_uses_auto(self):
        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HOMOGENEOUS
        )
        assert dispatch_method(problem, "period") == "auto"
        assert dispatch_method(problem, "latency") == "auto"
        assert dispatch_method(problem, "energy") == "auto"

    def test_np_hard_cell_uses_heuristic(self):
        problem = small_random_problem(
            0, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        assert dispatch_method(problem, "period") == "heuristic"
        assert dispatch_method(problem, "energy") == "heuristic"


class TestSolveOne:
    def test_matches_registry_dispatch(self):
        problem = small_random_problem(
            3, platform_class=PlatformClass.FULLY_HOMOGENEOUS
        )
        solution = solve_one(problem, "period")
        assert solution.optimal
        assert math.isfinite(solution.objective)

    def test_heuristic_on_hard_cell(self):
        problem = small_random_problem(
            4, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        solution = solve_one(problem, "period")
        assert not solution.optimal
        assert math.isfinite(solution.objective)

    def test_energy_requires_period_threshold(self):
        problem = small_random_problem(
            5, platform_class=PlatformClass.FULLY_HOMOGENEOUS
        )
        with pytest.raises(ValueError, match="period threshold"):
            solve_one(problem, "energy")

    def test_energy_with_threshold(self):
        problem = small_random_problem(
            6, platform_class=PlatformClass.FULLY_HOMOGENEOUS, n_modes=2
        )
        period = solve_one(problem, "period").objective
        solution = solve_one(
            problem, "energy", thresholds=Thresholds(period=2 * period)
        )
        assert math.isfinite(solution.objective)
        assert solution.values.period <= 2 * period * (1 + 1e-9)

    def test_unknown_objective(self):
        problem = small_random_problem(0)
        with pytest.raises(ValueError, match="unknown objective"):
            solve_one(problem, "throughput")


class TestSolveBatch:
    def test_sequential_covers_cells_in_order(self):
        problems = _problems(9)
        result = solve_batch(problems, objective="period")
        assert len(result.items) == 9
        assert [x.index for x in result.items] == list(range(9))
        assert result.n_ok == 9
        assert result.n_failed == 0
        assert all(x.wall_time >= 0 for x in result.items)
        # sequential run matches solve_one instance by instance
        for item in result.items:
            direct = solve_one(problems[item.index], "period")
            assert item.solution.objective == pytest.approx(direct.objective)

    def test_pooled_matches_sequential(self):
        problems = _problems(6)
        sequential = solve_batch(problems, objective="period", workers=None)
        pooled = solve_batch(problems, objective="period", workers=2)
        assert pooled.workers == 2
        assert pooled.n_ok == sequential.n_ok == 6
        for seq_item, pool_item in zip(sequential.items, pooled.items):
            assert seq_item.index == pool_item.index
            assert pool_item.solution.objective == pytest.approx(
                seq_item.solution.objective
            )

    def test_failures_are_contained(self):
        problems = _problems(4)
        # method="auto" raises SolverError on NP-hard cells: those items
        # must come back status="error" without poisoning the batch.
        result = solve_batch(problems, objective="period", method="auto")
        assert len(result.items) == 4
        statuses = {x.status for x in result.items}
        assert "ok" in statuses and "error" in statuses
        for item in result.items:
            if item.status == "error":
                assert item.solution is None
                assert item.error
                assert math.isinf(item.objective)

    def test_summary_mentions_counts(self):
        result = solve_batch(_problems(3), objective="latency")
        text = result.summary()
        assert "3/3 ok" in text
        assert "objective=latency" in text

    def test_stats_recorded(self):
        result = solve_batch(_problems(3))
        assert result.stats["n_instances"] == 3.0
        assert result.total_time > 0
        assert result.solve_time == pytest.approx(
            sum(x.wall_time for x in result.items)
        )

    def test_unknown_objective_rejected_before_solving(self):
        with pytest.raises(ValueError, match="unknown objective"):
            solve_batch(_problems(1), objective="stretch")


class TestSharedInstanceFastPath:
    """``solve_batch([problem] * n)`` ships the instance once per worker
    through the pool initializer instead of once per job."""

    def test_repeat_solve_matches_distinct_jobs(self):
        problem = small_random_problem(
            7, platform_class=PlatformClass.FULLY_HETEROGENEOUS
        )
        repeated = solve_batch([problem] * 6, objective="period", workers=2)
        assert repeated.n_ok == 6
        reference = solve_one(problem, "period").objective
        for item in repeated.items:
            assert item.solution.objective == pytest.approx(reference)

    def test_initializer_prebuilds_the_context(self):
        from repro.service.batch import _WORKER_CONFIG, _init_worker

        problem = small_random_problem(8)
        _init_worker(
            {
                "objective": "period",
                "method": "registry",
                "thresholds": None,
                "strategy": None,
                "budget": None,
                "problem": problem,
            }
        )
        try:
            assert "_eval_context" in problem.__dict__
            assert _WORKER_CONFIG["problem"] is problem
        finally:
            _WORKER_CONFIG.clear()

    def test_shared_jobs_resolve_the_initializer_problem(self):
        from repro.service.batch import (
            _WORKER_CONFIG,
            _init_worker,
            _solve_indexed,
        )

        problem = small_random_problem(9)
        _init_worker(
            {
                "objective": "period",
                "method": "registry",
                "thresholds": None,
                "strategy": None,
                "budget": None,
                "problem": problem,
            }
        )
        try:
            item = _solve_indexed((3, None))
            assert item.index == 3
            assert item.status == "ok"
        finally:
            _WORKER_CONFIG.clear()


class TestBatchItem:
    def test_objective_of_unsolved_is_inf(self):
        item = BatchItem(index=0, status="error", wall_time=0.0, error="boom")
        assert math.isinf(item.objective)


class TestFailurePaths:
    """Unknown parameters and per-item failures stay contained."""

    def test_unknown_method_becomes_error_items(self):
        result = solve_batch(_problems(2), method="simplex")
        assert result.n_failed == 2
        for item in result.items:
            assert item.status == "error"
            assert "unknown method" in item.error
            assert item.solution is None

    def test_unknown_objective_in_solve_one(self):
        with pytest.raises(ValueError, match="unknown objective"):
            solve_one(_problems(1)[0], "throughput")

    def test_energy_without_period_threshold_is_error_item(self):
        result = solve_batch(_problems(2), objective="energy")
        assert result.n_failed == 2
        assert all("period threshold" in x.error for x in result.items)

    def test_error_items_do_not_poison_pooled_batch(self):
        # method="auto" raises SolverError on NP-hard cells; the pooled
        # run must interleave errors and successes item by item.
        problems = _problems(6)
        pooled = solve_batch(
            problems, objective="period", method="auto", workers=2
        )
        sequential = solve_batch(problems, objective="period", method="auto")
        assert len(pooled.items) == 6
        statuses = [x.status for x in pooled.items]
        assert "ok" in statuses and "error" in statuses
        assert statuses == [x.status for x in sequential.items]
        for item in pooled.items:
            if item.status == "ok":
                assert math.isfinite(item.objective)
            else:
                assert item.solution is None and item.error

    def test_parallel_efficiency_on_sequential_path(self):
        result = solve_batch(_problems(4), workers=None)
        assert result.workers == 1
        stats = result.stats
        assert 0.0 < stats["parallel_efficiency"] <= 1.0 + 1e-9
        assert stats["parallel_efficiency"] == pytest.approx(
            result.solve_time / result.total_time
        )

    def test_infeasible_status_distinct_from_error(self):
        problem = _problems(1)[0]
        result = solve_batch(
            [problem],
            objective="energy",
            thresholds=Thresholds(period=1e-12),
        )
        assert result.items[0].status == "infeasible"
        assert result.n_failed == 0  # infeasible is not an error


class TestChunking:
    def test_auto_chunksize_formula(self):
        assert _auto_chunksize(1000, 4) == 62  # 1000 // 16
        assert _auto_chunksize(3, 4) == 1  # never below 1
        assert _auto_chunksize(0, 8) == 1

    def test_auto_and_explicit_chunksize_agree_on_results(self):
        problems = _problems(8)
        auto = solve_batch(problems, workers=2)  # chunksize=None -> auto
        explicit = solve_batch(problems, workers=2, chunksize=1)
        assert auto.n_ok == explicit.n_ok == 8
        for a, b in zip(auto.items, explicit.items):
            assert a.objective == pytest.approx(b.objective)


class TestTelemetry:
    def test_method_path_records_method_as_strategy(self):
        result = solve_batch(_problems(2), method="heuristic")
        for item in result.items:
            assert item.telemetry is not None
            assert item.telemetry.strategy == "heuristic"
            assert item.telemetry.status == item.status

    def test_budgeted_method_path_counts_evaluations(self):
        problems = [
            small_random_problem(
                s, platform_class=PlatformClass.FULLY_HETEROGENEOUS
            )
            for s in range(2)
        ]
        result = solve_batch(
            problems,
            method="heuristic",
            budget=SolveBudget(max_evaluations=50),
        )
        for item in result.items:
            assert item.telemetry.evaluations == 50
            assert item.telemetry.budget_exhausted

    def test_strategy_path_records_spec_and_members(self):
        problems = [
            small_random_problem(
                s, platform_class=PlatformClass.FULLY_HETEROGENEOUS
            )
            for s in range(2)
        ]
        result = solve_batch(
            problems,
            strategy="portfolio(greedy,local_search)",
            budget=SolveBudget(max_evaluations=2000, seed=0),
        )
        assert result.n_ok == 2
        for item in result.items:
            assert item.telemetry.strategy == "portfolio(greedy,local_search)"
            assert len(item.telemetry.members) == 2
