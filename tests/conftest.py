"""Shared fixtures for the test suite."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro import (
    Application,
    CommunicationModel,
    MappingRule,
    Platform,
    ProblemInstance,
)
from repro.paper import figure1_applications, figure1_platform

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]
BOTH_RULES = [MappingRule.ONE_TO_ONE, MappingRule.INTERVAL]


@pytest.fixture
def rng():
    """A deterministic RNG for per-test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def fig1_apps():
    """The two applications of the paper's Figure 1."""
    return figure1_applications()


@pytest.fixture
def fig1_platform():
    """The three bi-modal processors of Figure 1."""
    return figure1_platform()


@pytest.fixture
def fig1_problem(fig1_apps, fig1_platform):
    """The Figure 1 problem instance (interval rule, overlap model)."""
    return ProblemInstance(apps=fig1_apps, platform=fig1_platform)


@pytest.fixture
def two_small_apps():
    """Two tiny applications with non-trivial communications."""
    return (
        Application.from_lists([3, 2, 1], [1, 2, 0], input_data_size=1.0),
        Application.from_lists([2, 6], [1, 1], input_data_size=0.0),
    )


@pytest.fixture
def hom_platform():
    """A 5-processor fully homogeneous bi-modal platform."""
    return Platform.fully_homogeneous(5, speeds=[1.0, 2.0], bandwidth=2.0)


def _shm_entries():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # platform without POSIX shm visibility
        return None
    return {p.name for p in shm_dir.glob("repro-shm-*")}


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Fail any test that leaks a ``repro-shm-*`` shared-memory segment.

    The zero-copy transport promises its per-batch segments are
    unlinked on normal completion, worker crashes and interrupts; this
    fixture makes the whole suite enforce that promise (pre-existing
    entries from outside the test are tolerated, new ones are not).
    """
    before = _shm_entries()
    yield
    if before is None:
        return
    after = _shm_entries()
    leaked = after - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
