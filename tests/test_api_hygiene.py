"""API hygiene meta-tests: every public item is documented and exported
names actually exist (the library is meant as a usable open-source
release, not research scratch)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.algorithms",
    "repro.algorithms.exact",
    "repro.algorithms.heuristics",
    "repro.algorithms.reductions",
    "repro.analysis",
    "repro.extensions",
    "repro.generators",
    "repro.kernel",
    "repro.matching",
    "repro.paper",
    "repro.service",
    "repro.simulation",
]


def iter_all_modules():
    seen = set()
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        seen.add(name)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                full = f"{name}.{info.name}"
                if full not in seen:
                    seen.add(full)
                    yield importlib.import_module(full)


@pytest.mark.parametrize(
    "module", list(iter_all_modules()), ids=lambda m: m.__name__
)
def test_module_docstrings(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_exist(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists missing {name}"


def _public_callables(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


@pytest.mark.parametrize(
    "module", list(iter_all_modules()), ids=lambda m: m.__name__
)
def test_public_callables_documented(module):
    undocumented = [
        name
        for name, obj in _public_callables(module)
        if not inspect.getdoc(obj)
    ]
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )


def test_version_string():
    assert repro.__version__
    # A PEP 440 local suffix ("1.0.0+src") marks an uninstalled
    # source-tree run; the public part must still be X.Y.Z.
    public = repro.__version__.split("+", 1)[0]
    parts = public.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_top_level_all_importable():
    for name in repro.__all__:
        assert hasattr(repro, name)
