"""End-to-end acceptance of the solve-service daemon.

The scenario from the issue: start the daemon, submit 20 distinct
instances plus 1 duplicate over HTTP; every job returns ``status="ok"``
with telemetry, and the duplicate is served from cache/coalescing with
*zero additional solver evaluations*.
"""

import pytest

from repro.client import SolveClient
from repro.experiments import ResultsCache, cell_key
from repro.generators import small_random_problem
from repro.server import ServerThread
from repro.strategies import SolveBudget


N_DISTINCT = 20


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("daemon-cache")
    with ServerThread(
        executor="thread", concurrency=4, cache=str(cache_dir)
    ) as server:
        yield server, SolveClient(server.url, timeout=30.0), cache_dir


class TestTwentyPlusOneDuplicate:
    def test_twenty_distinct_plus_duplicate(self, stack):
        server, client, cache_dir = stack
        problems = [small_random_problem(1000 + i) for i in range(N_DISTINCT)]
        # A metered strategy so "zero additional evaluations" is a real
        # assertion, not vacuously true.
        solver_kwargs = dict(
            strategy="greedy",
            budget=SolveBudget(max_evaluations=200_000, seed=0),
        )

        ids = client.submit_many(problems, **solver_kwargs)
        # The duplicate goes in while the fleet may still be in flight:
        # it must coalesce onto the live cell or hit the cache — never
        # trigger a 21st solve.
        dup_view = client.submit(problems[0], **solver_kwargs)

        results = {r.job_id: r for r in client.iter_results(ids, timeout=300)}
        dup_result = client.wait(dup_view["id"], timeout=300)

        assert len(results) == N_DISTINCT
        for result in results.values():
            assert result.status == "ok"
            assert result.telemetry is not None
            assert result.telemetry.evaluations > 0
            assert result.solution.objective > 0

        assert dup_result.status == "ok"
        assert dup_result.source in ("cache", "coalesced")
        assert dup_result.telemetry is not None
        assert (
            dup_result.solution.objective
            == results[ids[0]].solution.objective
        )

        metrics = client.metrics()
        # 21 submissions, exactly 20 solves: the duplicate added zero.
        assert metrics["jobs"]["submitted"] == N_DISTINCT + 1
        assert metrics["jobs"]["solved"] == N_DISTINCT
        assert metrics["jobs"]["completed"] == N_DISTINCT + 1
        assert (
            metrics["jobs"]["cache_hits"] + metrics["jobs"]["coalesced"] == 1
        )
        # Zero additional solver evaluations for the duplicate: the
        # total equals the sum over the 20 distinct solves.
        assert metrics["solver"]["evaluations"] == sum(
            r.telemetry.evaluations for r in results.values()
        )

    def test_cache_is_shared_with_campaign_tooling(self, stack):
        """The daemon's on-disk records live in the same
        content-addressed cache campaigns use: keys match
        :func:`repro.experiments.cell_key` and entries parse."""
        server, client, cache_dir = stack
        problem = small_random_problem(1000)
        solver_payload = {
            "name": "request",
            "objective": "period",
            "strategy": "greedy",
            "budget": {"max_evaluations": 200_000, "seed": 0},
        }
        key = cell_key(problem, solver_payload)
        record = ResultsCache(cache_dir).get(key)
        assert record is not None
        assert record["status"] == "ok"
        assert record["telemetry"]["strategy"] == "greedy"
        assert record["mapping"]["assignments"]

    def test_daemon_restart_serves_from_persistent_cache(self, stack):
        """A fresh daemon on the same cache directory answers previously
        solved cells without re-solving."""
        _server, _client, cache_dir = stack
        with ServerThread(
            executor="thread", concurrency=2, cache=str(cache_dir)
        ) as second:
            client = SolveClient(second.url, timeout=30.0)
            result = client.solve(
                small_random_problem(1000),
                strategy="greedy",
                budget=SolveBudget(max_evaluations=200_000, seed=0),
                timeout=60,
            )
            assert result.status == "ok"
            assert result.source == "cache"
            metrics = client.metrics()
            assert metrics["jobs"]["solved"] == 0
            assert metrics["jobs"]["cache_hits"] == 1
