"""End-to-end integration tests: generate -> solve -> validate -> simulate
across every cell of the paper's taxonomy, plus registry/solver coherence."""

import math

import pytest

from repro import (
    CommunicationModel,
    Criterion,
    MappingRule,
    PlatformClass,
    SolverError,
    Thresholds,
)
from repro.algorithms import (
    Complexity,
    expected_complexity,
    minimize_latency,
    minimize_period,
)
from repro.algorithms.exact import exact_minimize
from repro.core.evaluation import application_latency, application_period
from repro.generators import small_random_problem
from repro.simulation import simulate

ALL_CELLS = list(PlatformClass)
BOTH_RULES = list(MappingRule)
BOTH_MODELS = list(CommunicationModel)


class TestSolveValidateSimulate:
    @pytest.mark.parametrize("cell", ALL_CELLS)
    @pytest.mark.parametrize("rule", BOTH_RULES)
    @pytest.mark.parametrize("model", BOTH_MODELS)
    def test_full_pipeline(self, cell, rule, model):
        """For every (cell, rule, model): solve exactly, validate the
        mapping, simulate it, and confirm analytic == measured."""
        problem = small_random_problem(
            3, platform_class=cell, rule=rule, model=model, stage_range=(1, 3)
        )
        solution = exact_minimize(problem, Criterion.PERIOD)
        problem.check_mapping(solution.mapping)
        result = simulate(
            problem.apps, problem.platform, solution.mapping, 120, model=model
        )
        for a in solution.mapping.applications:
            analytic_t = application_period(
                problem.apps, problem.platform, solution.mapping, a, model
            )
            analytic_l = application_latency(
                problem.apps, problem.platform, solution.mapping, a
            )
            assert result.measured_period(a) == pytest.approx(analytic_t)
            assert result.measured_latency(a) == pytest.approx(analytic_l)


class TestRegistrySolverCoherence:
    """The registry's 'polynomial' claims must be backed by a working
    solver, and the facade must refuse the NP-hard cells."""

    @pytest.mark.parametrize("cell", ALL_CELLS)
    @pytest.mark.parametrize("rule", BOTH_RULES)
    def test_period_facade_matches_registry(self, cell, rule):
        problem = small_random_problem(
            5, platform_class=cell, rule=rule, stage_range=(1, 2)
        )
        entry = expected_complexity(problem, [Criterion.PERIOD])
        if entry.complexity is Complexity.POLYNOMIAL:
            solution = minimize_period(problem)
            exact = exact_minimize(problem, Criterion.PERIOD)
            assert solution.objective == pytest.approx(exact.objective)
            assert solution.optimal
        else:
            with pytest.raises(SolverError):
                minimize_period(problem)
            # The exact/heuristic fallbacks still serve the cell.
            heur = minimize_period(problem, method="heuristic")
            assert not heur.optimal
            problem.check_mapping(heur.mapping)

    @pytest.mark.parametrize("cell", ALL_CELLS)
    @pytest.mark.parametrize("rule", BOTH_RULES)
    def test_latency_facade_matches_registry(self, cell, rule):
        problem = small_random_problem(
            6, platform_class=cell, rule=rule, stage_range=(1, 2)
        )
        entry = expected_complexity(problem, [Criterion.LATENCY])
        if entry.complexity is Complexity.POLYNOMIAL:
            solution = minimize_latency(problem)
            exact = exact_minimize(problem, Criterion.LATENCY)
            assert solution.objective == pytest.approx(exact.objective)
        else:
            with pytest.raises(SolverError):
                minimize_latency(problem)


class TestThresholdConsistency:
    """Optimizing X under a bound on Y, then Y under the achieved X, must
    not be able to improve both (weak Pareto consistency of the solvers)."""

    def test_period_latency_round_trip(self):
        from repro.algorithms import (
            minimize_latency_given_period,
            minimize_period_given_latency,
            minimize_period_interval,
        )

        problem = small_random_problem(
            8, platform_class=PlatformClass.FULLY_HOMOGENEOUS, stage_range=(2, 4)
        )
        base = minimize_period_interval(problem).objective
        s1 = minimize_latency_given_period(
            problem, Thresholds(period=base * 1.5)
        )
        s2 = minimize_period_given_latency(
            problem, Thresholds(latency=s1.objective)
        )
        # s2's period can be at most the bound s1 satisfied.
        assert s2.objective <= base * 1.5 * (1 + 1e-9)
        # And re-minimizing latency at s2's period cannot beat s1.
        s3 = minimize_latency_given_period(
            problem, Thresholds(period=s2.objective)
        )
        assert s3.objective >= s1.objective - 1e-9

    def test_energy_period_round_trip(self):
        from repro.algorithms import (
            minimize_energy_given_period_interval,
            minimize_period_interval,
        )

        problem = small_random_problem(
            9,
            platform_class=PlatformClass.FULLY_HOMOGENEOUS,
            stage_range=(2, 3),
            n_modes=3,
        )
        base = minimize_period_interval(problem).objective
        s1 = minimize_energy_given_period_interval(
            problem, Thresholds(period=base * 2.0)
        )
        # The energy optimum under the bound is feasible and honest.
        assert s1.values.period <= base * 2.0 * (1 + 1e-9)
        assert s1.objective == pytest.approx(s1.values.energy)


class TestDeterminism:
    """Identical seeds must yield identical problems and solutions."""

    @pytest.mark.parametrize("cell", ALL_CELLS)
    def test_exact_solver_deterministic(self, cell):
        p1 = small_random_problem(11, platform_class=cell, stage_range=(1, 3))
        p2 = small_random_problem(11, platform_class=cell, stage_range=(1, 3))
        s1 = exact_minimize(p1, Criterion.PERIOD)
        s2 = exact_minimize(p2, Criterion.PERIOD)
        assert s1.objective == s2.objective
        assert s1.mapping == s2.mapping

    def test_heuristic_deterministic(self):
        from repro.algorithms.heuristics import (
            greedy_interval_period,
            hill_climb,
        )

        p = small_random_problem(
            12,
            platform_class=PlatformClass.FULLY_HETEROGENEOUS,
            stage_range=(2, 3),
        )
        runs = [
            hill_climb(
                p, greedy_interval_period(p).mapping, Criterion.PERIOD
            ).objective
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
