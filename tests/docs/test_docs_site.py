"""Docs-site integrity checks that run without mkdocs installed.

CI builds the site with ``mkdocs build --strict``; these tests catch the
same classes of breakage (missing nav pages, dead relative links,
mkdocstrings directives and cross-references pointing at objects that do
not exist) locally and in environments without the docs toolchain.
"""

import importlib
import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def load_config():
    # mkdocs.yml may use python-specific tags in some setups; ours is plain.
    return yaml.safe_load(MKDOCS_YML.read_text())


def nav_paths(nav):
    """Flatten the mkdocs nav tree into page paths."""
    out = []
    for entry in nav:
        if isinstance(entry, str):
            out.append(entry)
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    out.append(value)
                else:
                    out.extend(nav_paths(value))
    return out


def all_doc_pages():
    return sorted(DOCS_DIR.rglob("*.md"))


def resolve_identifier(identifier: str):
    """Import the object a mkdocstrings identifier points at."""
    parts = identifier.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(f"cannot import {identifier!r}")


class TestMkdocsConfig:
    def test_config_parses_and_is_strict(self):
        config = load_config()
        assert config["strict"] is True
        assert any(
            (p == "mkdocstrings") or (isinstance(p, dict) and "mkdocstrings" in p)
            for p in config["plugins"]
        )

    def test_every_nav_page_exists(self):
        for page in nav_paths(load_config()["nav"]):
            assert (DOCS_DIR / page).is_file(), f"nav page missing: {page}"

    def test_every_doc_page_is_in_nav(self):
        in_nav = set(nav_paths(load_config()["nav"]))
        on_disk = {str(p.relative_to(DOCS_DIR)) for p in all_doc_pages()}
        assert on_disk == in_nav

    def test_api_reference_covers_required_packages(self):
        """The acceptance criterion: rendered API reference for
        repro.experiments, repro.service and repro.kernel."""
        text = "".join(
            (DOCS_DIR / "api" / name).read_text()
            for name in ("experiments.md", "service.md", "kernel.md")
        )
        for module in (
            "repro.experiments.spec",
            "repro.experiments.cache",
            "repro.experiments.runner",
            "repro.service.batch",
            "repro.kernel.context",
            "repro.kernel.vectorized",
        ):
            assert f"::: {module}" in text, f"API page missing ::: {module}"


class TestPageIntegrity:
    def test_mkdocstrings_directives_import(self):
        directives = []
        for page in all_doc_pages():
            directives += re.findall(
                r"^::: +([\w.]+)", page.read_text(), flags=re.MULTILINE
            )
        assert directives, "no mkdocstrings directives found"
        for identifier in directives:
            resolve_identifier(identifier)  # raises on a dead target

    def test_cross_references_resolve(self):
        refs = []
        for page in all_doc_pages():
            refs += re.findall(r"\]\[([\w.]+)\]", page.read_text())
        assert refs, "no mkdocstrings cross-references found"
        for identifier in set(refs):
            resolve_identifier(identifier)

    def test_relative_links_resolve(self):
        for page in all_doc_pages():
            for target in re.findall(r"\]\(([^)]+)\)", page.read_text()):
                if target.startswith(("http://", "https://", "#", "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (page.parent / path).resolve()
                assert resolved.exists(), f"{page.name}: dead link {target}"

    def test_readme_links_resolve(self):
        readme = REPO_ROOT / "README.md"
        for target in re.findall(r"\]\(([^)]+)\)", readme.read_text()):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            assert (REPO_ROOT / path).exists(), f"README: dead link {target}"

    def test_example_spec_referenced_by_docs_exists(self):
        assert (REPO_ROOT / "examples" / "campaign_small.yaml").is_file()


class TestExampleSpec:
    """The shipped example spec must validate and demonstrate the
    named-strategy solver entry the campaign docs describe."""

    def load_example(self):
        from repro.experiments import load_spec

        return load_spec(REPO_ROOT / "examples" / "campaign_small.yaml")

    def test_example_spec_validates(self):
        spec = self.load_example()
        assert spec.name == "small-sweep"
        assert spec.n_cells == len(spec.grid) * len(spec.solvers)

    def test_example_spec_has_a_named_strategy_entry(self):
        from repro.strategies import parse_strategy

        spec = self.load_example()
        strategy_entries = [s for s in spec.solvers if s.strategy is not None]
        assert strategy_entries, "example spec must show a strategy: entry"
        solver = strategy_entries[0]
        assert parse_strategy(solver.strategy).spec == solver.strategy
        # a bounded, seeded budget keeps the example deterministic
        assert solver.budget is not None
        assert solver.budget.max_evaluations is not None
        assert solver.budget.seed is not None

    def test_docs_show_the_strategy_entry(self):
        campaigns_page = (DOCS_DIR / "campaigns.md").read_text()
        assert "strategy:" in campaigns_page
        assert "budget:" in campaigns_page


@pytest.mark.skipif(
    importlib.util.find_spec("mkdocs") is None,
    reason="mkdocs not installed (CI runs the real strict build)",
)
class TestRealBuild:
    def test_mkdocs_build_strict(self, tmp_path):
        from mkdocs.commands.build import build as mkdocs_build
        from mkdocs.config import load_config as mkdocs_load_config

        config = mkdocs_load_config(
            config_file=str(MKDOCS_YML), site_dir=str(tmp_path / "site")
        )
        mkdocs_build(config)
