"""Tests for the ``repro-pipelines`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_demo_example(self, capsys):
        assert main(["demo-example"]) == 0
        out = capsys.readouterr().out
        assert "optimal period" in out
        assert "136" in out and "2.75" in out and "46" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "NP-complete" in out and "polynomial" in out

    def test_solve_default(self, capsys):
        assert main(["solve", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "objective (period)" in out
        assert "theorem3" in out

    def test_solve_latency_heuristic(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--criterion",
                    "latency",
                    "--platform",
                    "fully-heterogeneous",
                    "--method",
                    "heuristic",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "optimal : False" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--datasets", "50"]) == 0
        out = capsys.readouterr().out
        assert "measured period" in out

    def test_simulate_no_overlap(self, capsys):
        assert main(["simulate", "--model", "no-overlap"]) == 0

    def test_generate_and_solve_file(self, capsys, tmp_path):
        instance = tmp_path / "inst.json"
        mapping = tmp_path / "map.json"
        assert main(["generate", str(instance), "--seed", "4"]) == 0
        assert instance.exists()
        assert (
            main(
                [
                    "solve-file",
                    str(instance),
                    "--criterion",
                    "energy",
                    "--max-period",
                    "50",
                    "--output",
                    str(mapping),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "objective (energy)" in out
        assert mapping.exists()
        # The saved mapping round-trips and validates.
        import json

        from repro.io import load_problem, mapping_from_dict

        problem = load_problem(instance)
        m = mapping_from_dict(json.loads(mapping.read_text()))
        problem.check_mapping(m)

    def test_solve_batch_sequential(self, capsys):
        assert main(["solve-batch", "--count", "9", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "9/9 ok" in out
        assert "registry cells covered: 3" in out
        assert "time (ms)" in out  # per-instance timing column

    def test_solve_batch_pooled_quiet(self, capsys):
        assert (
            main(
                [
                    "solve-batch",
                    "--count",
                    "6",
                    "--workers",
                    "2",
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "6/6 ok" in out
        assert "workers=2" in out
        assert "time (ms)" not in out

    def test_pareto_default_figure1(self, capsys):
        assert main(["pareto"]) == 0
        out = capsys.readouterr().out
        assert "non-dominated" in out
        assert "136" in out and "46" in out

    def test_pareto_from_file(self, capsys, tmp_path):
        instance = tmp_path / "inst.json"
        assert main(["generate", str(instance), "--seed", "1", "--modes", "2"]) == 0
        assert main(["pareto", "--instance", str(instance), "--points", "20"]) == 0
        out = capsys.readouterr().out
        assert "non-dominated" in out

    def test_front_default_figure1_matches_pareto(self, capsys):
        assert main(["front", "--points", "100", "--progress"]) == 0
        front_out = capsys.readouterr().out
        assert "non-dominated" in front_out and "warm-started" in front_out
        assert main(["pareto"]) == 0
        pareto_out = capsys.readouterr().out
        # Identical front tables (the anytime engine is byte-identical
        # to the sequential exact sweep).
        assert front_out.split("(")[0].strip().splitlines()[-5:] == (
            pareto_out.split("(")[0].strip().splitlines()[-5:]
        )

    def test_front_json_output(self, capsys, tmp_path):
        import json

        instance = tmp_path / "inst.json"
        out_file = tmp_path / "front.json"
        assert main(["generate", str(instance), "--seed", "2", "--modes", "2"]) == 0
        assert (
            main(
                [
                    "front",
                    str(instance),
                    "--points",
                    "15",
                    "--output",
                    str(out_file),
                ]
            )
            == 0
        )
        payload = json.loads(out_file.read_text())
        assert payload["cells"] >= 1
        assert all(len(p) == 2 for p in payload["front"])


class TestStrategiesCli:
    def test_list_enumerates_at_least_ten_with_capabilities(self, capsys):
        assert main(["strategies", "list"]) == 0
        out = capsys.readouterr().out
        # header + separator + >= 10 strategy rows
        rows = [
            line
            for line in out.splitlines()
            if " | " in line and not line.startswith("strategy")
            and not set(line) <= {"-", "+", " ", "|"}
        ]
        assert len(rows) >= 10
        assert "objectives" in out and "thresholds" in out
        for name in ("registry", "heuristic", "annealing", "mode_scaling"):
            assert name in out

    def test_solve_batch_with_strategy_and_budget(self, capsys):
        assert (
            main(
                [
                    "solve-batch",
                    "--count",
                    "4",
                    "--platform",
                    "fully-heterogeneous",
                    "--strategy",
                    "portfolio(greedy,local_search)",
                    "--max-evals",
                    "500",
                    "--solver-seed",
                    "3",
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4/4 ok" in out
        assert "strategy=portfolio(greedy,local_search)" in out
        assert "budget-exhausted=" in out

    def test_solve_batch_rejects_bad_strategy(self, capsys):
        from repro.strategies import StrategyError

        with pytest.raises(StrategyError):
            main(
                [
                    "solve-batch",
                    "--count",
                    "1",
                    "--strategy",
                    "portfolio(",
                    "--quiet",
                ]
            )

    def test_campaign_run_strategy_override(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "override-sweep",
                    "scenarios": {
                        "platforms": ["fully-heterogeneous"],
                        "seeds": 2,
                    },
                    "solvers": [{"name": "base", "objective": "period"}],
                }
            )
        )
        cache = str(tmp_path / "cache")
        assert (
            main(
                [
                    "campaign",
                    "run",
                    str(spec),
                    "--dir",
                    cache,
                    "--strategy",
                    "portfolio(greedy,local_search)",
                    "--max-evals",
                    "500",
                    "--solver-seed",
                    "0",
                    "--quiet",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "cache keys" in err  # the override notice
        # the overridden run populated its own cells; a plain run solves anew
        assert main(["campaign", "run", str(spec), "--dir", cache, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 cached + 2 solved" in out

    def test_campaign_report_includes_telemetry_table(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "telemetry-report",
                    "scenarios": {
                        "platforms": ["fully-heterogeneous"],
                        "seeds": 2,
                    },
                    "solvers": [
                        {
                            "name": "racer",
                            "objective": "period",
                            "strategy": "portfolio(greedy,annealing)",
                            "budget": {"max_evaluations": 400, "seed": 0},
                        }
                    ],
                }
            )
        )
        cache = str(tmp_path / "cache")
        main(["campaign", "run", str(spec), "--dir", cache, "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "report", str(spec), "--dir", cache]) == 0
        out = capsys.readouterr().out
        assert "per-solver telemetry" in out
        assert "portfolio(greedy,annealing)" in out


class TestServerCli:
    """The daemon-facing verbs (submit / jobs / job-result) against a
    live in-process server."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.server import ServerThread

        with ServerThread(executor="thread", concurrency=2) as handle:
            yield handle

    @pytest.fixture()
    def instance_file(self, tmp_path):
        path = tmp_path / "instance.json"
        assert main(["generate", str(path), "--seed", "42"]) == 0
        return str(path)

    def test_submit_wait_and_fetch_result(
        self, server, instance_file, tmp_path, capsys
    ):
        assert (
            main(
                [
                    "submit",
                    instance_file,
                    "--url",
                    server.url,
                    "--wait",
                    "--strategy",
                    "greedy",
                    "--max-evals",
                    "100000",
                    "--solver-seed",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ok" in out and "period=" in out
        job_id = out.split()[0]

        mapping_path = tmp_path / "mapping.json"
        assert (
            main(
                [
                    "job-result",
                    job_id,
                    "--url",
                    server.url,
                    "--output",
                    str(mapping_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "status  : ok" in out
        assert "telemetry: strategy=greedy" in out
        assert mapping_path.exists()

        assert main(["jobs", "--url", server.url, "--state", "done"]) == 0
        out = capsys.readouterr().out
        assert job_id in out

    def test_duplicate_submit_reports_cache(self, server, instance_file, capsys):
        args = ["submit", instance_file, "--url", server.url, "--wait"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "via=cache" in capsys.readouterr().out

    def test_jobs_metrics(self, server, capsys):
        assert main(["jobs", "--url", server.url, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "queue:" in out and "solver:" in out

    def test_unreachable_server_exits_2(self, instance_file, capsys):
        assert (
            main(
                ["submit", instance_file, "--url", "http://127.0.0.1:9"]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err
        assert main(["jobs", "--url", "http://127.0.0.1:9"]) == 2
        capsys.readouterr()
        assert (
            main(["job-result", "jxxx", "--url", "http://127.0.0.1:9"]) == 2
        )

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8787
        assert args.concurrency == 2
        assert args.executor == "process"
        assert args.cache_dir is None
