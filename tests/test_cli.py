"""Tests for the ``repro-pipelines`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_demo_example(self, capsys):
        assert main(["demo-example"]) == 0
        out = capsys.readouterr().out
        assert "optimal period" in out
        assert "136" in out and "2.75" in out and "46" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "NP-complete" in out and "polynomial" in out

    def test_solve_default(self, capsys):
        assert main(["solve", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "objective (period)" in out
        assert "theorem3" in out

    def test_solve_latency_heuristic(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--criterion",
                    "latency",
                    "--platform",
                    "fully-heterogeneous",
                    "--method",
                    "heuristic",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "optimal : False" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--datasets", "50"]) == 0
        out = capsys.readouterr().out
        assert "measured period" in out

    def test_simulate_no_overlap(self, capsys):
        assert main(["simulate", "--model", "no-overlap"]) == 0

    def test_generate_and_solve_file(self, capsys, tmp_path):
        instance = tmp_path / "inst.json"
        mapping = tmp_path / "map.json"
        assert main(["generate", str(instance), "--seed", "4"]) == 0
        assert instance.exists()
        assert (
            main(
                [
                    "solve-file",
                    str(instance),
                    "--criterion",
                    "energy",
                    "--max-period",
                    "50",
                    "--output",
                    str(mapping),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "objective (energy)" in out
        assert mapping.exists()
        # The saved mapping round-trips and validates.
        import json

        from repro.io import load_problem, mapping_from_dict

        problem = load_problem(instance)
        m = mapping_from_dict(json.loads(mapping.read_text()))
        problem.check_mapping(m)

    def test_solve_batch_sequential(self, capsys):
        assert main(["solve-batch", "--count", "9", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "9/9 ok" in out
        assert "registry cells covered: 3" in out
        assert "time (ms)" in out  # per-instance timing column

    def test_solve_batch_pooled_quiet(self, capsys):
        assert (
            main(
                [
                    "solve-batch",
                    "--count",
                    "6",
                    "--workers",
                    "2",
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "6/6 ok" in out
        assert "workers=2" in out
        assert "time (ms)" not in out

    def test_pareto_default_figure1(self, capsys):
        assert main(["pareto"]) == 0
        out = capsys.readouterr().out
        assert "non-dominated" in out
        assert "136" in out and "46" in out

    def test_pareto_from_file(self, capsys, tmp_path):
        instance = tmp_path / "inst.json"
        assert main(["generate", str(instance), "--seed", "1", "--modes", "2"]) == 0
        assert main(["pareto", "--instance", str(instance), "--points", "20"]) == 0
        out = capsys.readouterr().out
        assert "non-dominated" in out
