"""Prometheus exposition: rendering from JSON payloads and parsing back.

The invariant under test is the one the endpoints promise: the text of
``GET /metrics`` is rendered *from* the JSON ``/v1/metrics`` payload, so
every bucket count, counter and gauge in the exposition must equal the
corresponding JSON value.
"""

import math

import pytest

from repro.obs.export import parse_prometheus, to_prometheus
from repro.obs.metrics import MetricsRegistry


def _daemon_payload(shard=None):
    reg = MetricsRegistry()
    wall = reg.histogram("solve_wall_seconds", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        wall.observe(v)
    return {
        "version": "9.9.9",
        "uptime_s": 12.5,
        "shard": shard,
        "engine": "batched",
        "queue": {
            "depth": 3,
            "running": 2,
            "concurrency": 4,
            "max_depth": 64,
            "shed": 1,
        },
        "jobs": {"submitted": 10, "completed": 7, "cache_hits": 2},
        "jobs_in_flight": 3,
        "solver": {"evaluations": 12345, "solve_time_s": 6.25},
        "cache": {"entries": 5},
        "histograms": reg.to_dict(kinds=("histogram",)),
    }


class TestDaemonExposition:
    def test_families_match_the_json_payload(self):
        payload = _daemon_payload(shard="s0")
        families = parse_prometheus(to_prometheus(payload))
        shard = {"shard": "s0"}
        assert families["repro_queue_depth"] == [(shard, 3.0)]
        assert families["repro_queue_running"] == [(shard, 2.0)]
        assert families["repro_queue_max_depth"] == [(shard, 64.0)]
        assert families["repro_jobs_in_flight"] == [(shard, 3.0)]
        assert families["repro_jobs_submitted_total"] == [(shard, 10.0)]
        assert families["repro_jobs_cache_hits_total"] == [(shard, 2.0)]
        assert families["repro_solver_evaluations_total"] == [(shard, 12345.0)]
        assert families["repro_cache_entries"] == [(shard, 5.0)]
        ((info_labels, info_value),) = families["repro_build_info"]
        assert info_value == 1.0
        assert info_labels["shard"] == "s0"
        assert info_labels["engine"] == "batched"

    def test_histogram_buckets_match_and_inf_equals_count(self):
        payload = _daemon_payload()
        families = parse_prometheus(to_prometheus(payload))
        buckets = {
            labels["le"]: value
            for labels, value in families["repro_solve_wall_seconds_bucket"]
        }
        json_buckets = payload["histograms"]["solve_wall_seconds"]["buckets"]
        for bound, cumulative in json_buckets:
            assert buckets["%g" % bound] == cumulative
        assert buckets["+Inf"] == payload["histograms"]["solve_wall_seconds"]["count"]
        ((_, count),) = families["repro_solve_wall_seconds_count"]
        assert count == 4.0
        ((_, total),) = families["repro_solve_wall_seconds_sum"]
        assert total == pytest.approx(5.555)

    def test_unsharded_daemon_has_no_shard_label(self):
        families = parse_prometheus(to_prometheus(_daemon_payload()))
        (labels, _value) = families["repro_queue_depth"][0]
        assert "shard" not in labels


class TestRouterExposition:
    def _payload(self):
        reg = MetricsRegistry()
        fwd = reg.histogram(
            "forward_seconds", buckets=(0.01, 1.0), labelnames=("shard",)
        )
        fwd.labels("s0").observe(0.005)
        fwd.labels("s0").observe(0.5)
        fwd.labels("s1").observe(0.005)
        return {
            "version": "9.9.9",
            "role": "router",
            "uptime_s": 3.0,
            "router": {"forwarded": 9, "retries": 2, "markdowns": 1},
            "ring": {"nodes": ["s0", "s1"], "vnodes": 192, "points": 384},
            "shard_health": [
                {"name": "s0", "url": "http://a", "up": True,
                 "consecutive_failures": 0, "forwarded": 5},
                {"name": "s1", "url": "http://b", "up": False,
                 "consecutive_failures": 3, "forwarded": 4},
            ],
            "fleet": {
                "jobs": {"submitted": 9, "completed": 8},
                "solver": {"evaluations": 100, "solve_time_s": 1.5},
            },
            "shards": {
                "s0": _daemon_payload(shard="s0"),
                "s1": {"error": "HTTP 503"},
            },
            "histograms": reg.to_dict(kinds=("histogram",)),
        }

    def test_router_families(self):
        families = parse_prometheus(to_prometheus(self._payload()))
        assert families["repro_router_forwarded_total"] == [({}, 9.0)]
        assert families["repro_router_retries_total"] == [({}, 2.0)]
        assert families["repro_ring_nodes"] == [({}, 2.0)]
        assert dict(
            (labels["shard"], value)
            for labels, value in families["repro_shard_up"]
        ) == {"s0": 1.0, "s1": 0.0}
        assert families["repro_fleet_jobs_submitted_total"] == [({}, 9.0)]
        assert families["repro_fleet_solver_evaluations_total"] == [({}, 100.0)]

    def test_labeled_forward_histogram_series(self):
        families = parse_prometheus(to_prometheus(self._payload()))
        counts = {
            labels["shard"]: value
            for labels, value in families["repro_forward_seconds_count"]
        }
        assert counts == {"s0": 2.0, "s1": 1.0}

    def test_per_shard_daemon_families_skip_down_shards(self):
        families = parse_prometheus(to_prometheus(self._payload()))
        rows = families["repro_jobs_submitted_total"]
        assert [labels for labels, _ in rows] == [{"shard": "s0"}]

    def test_dict_keyed_shard_health_also_accepted(self):
        payload = self._payload()
        payload["shard_health"] = {
            "s0": {"up": True},
            "s1": {"up": False, "consecutive_failures": 1},
        }
        families = parse_prometheus(to_prometheus(payload))
        assert dict(
            (labels["shard"], value)
            for labels, value in families["repro_shard_up"]
        ) == {"s0": 1.0, "s1": 0.0}


class TestParser:
    def test_label_escaping_round_trips(self):
        payload = _daemon_payload(shard='we"ird\\na\nme')
        families = parse_prometheus(to_prometheus(payload))
        (labels, _value) = families["repro_queue_depth"][0]
        assert labels["shard"] == 'we"ird\\na\nme'

    def test_inf_values(self):
        assert parse_prometheus("m +Inf\n")["m"] == [({}, math.inf)]
        assert parse_prometheus("m -Inf\n")["m"] == [({}, -math.inf)]

    def test_malformed_lines_raise(self):
        with pytest.raises(ValueError):
            parse_prometheus("lonely_metric_without_value\n")
        with pytest.raises(ValueError):
            parse_prometheus('m{key="unclosed 1\n')
        with pytest.raises(ValueError):
            parse_prometheus("m{key=unquoted} 1\n")
