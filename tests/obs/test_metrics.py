"""Unit tests for counters, gauges, histograms and the registry."""

import threading

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    FAST_LATENCY_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("hits", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == {"type": "counter", "value": 3.5}

    def test_gauge_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12.0
        assert g.snapshot() == {"type": "gauge", "value": 12.0}


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        # le= bounds are inclusive: 0.1 falls in the first bucket.
        assert snap["buckets"] == [[0.1, 2], [1.0, 3], [10.0, 4]]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.65)

    def test_observation_above_last_bound_counts_only_in_total(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(99.0)
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 0]]
        assert snap["count"] == 1  # the implicit +Inf bucket

    def test_bounds_are_sorted_and_validated(self):
        h = Histogram("lat", buckets=(10.0, 0.1, 1.0))
        assert h.buckets == (0.1, 1.0, 10.0)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(float("nan"),))

    def test_labeled_series_are_independent(self):
        h = Histogram("fwd", buckets=(1.0,), labelnames=("shard",))
        h.labels("s0").observe(0.5)
        h.labels("s0").observe(0.5)
        h.labels("s1").observe(0.5)
        snap = h.snapshot()
        assert snap["labelnames"] == ["shard"]
        assert snap["series"]["s0"]["count"] == 2
        assert snap["series"]["s1"]["count"] == 1

    def test_label_misuse_raises(self):
        plain = Histogram("plain", buckets=(1.0,))
        labeled = Histogram("labeled", buckets=(1.0,), labelnames=("a", "b"))
        with pytest.raises(ValueError):
            plain.labels("x")
        with pytest.raises(ValueError):
            labeled.observe(1.0)
        with pytest.raises(ValueError):
            labeled.labels("only-one")

    def test_concurrent_observations_are_not_lost(self):
        h = Histogram("lat", buckets=LATENCY_BUCKETS)

        def worker():
            for _ in range(1000):
                h.observe(0.01)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap["count"] == 8000
        assert snap["buckets"][-1][1] == 8000

    def test_default_bucket_ladders_are_sorted(self):
        for ladder in (LATENCY_BUCKETS, FAST_LATENCY_BUCKETS, COUNT_BUCKETS):
            assert list(ladder) == sorted(ladder)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.names() == ["a", "g", "h"]

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_to_dict_filters_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        everything = reg.to_dict()
        assert set(everything) == {"c", "g", "h"}
        only_hist = reg.to_dict(kinds=("histogram",))
        assert set(only_hist) == {"h"}
        assert only_hist["h"]["count"] == 1
