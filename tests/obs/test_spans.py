"""Unit tests for the span API: recorder, context, phase accumulation."""

import json
import threading

import pytest

from repro.obs import spans as obs_spans
from repro.obs.spans import (
    SpanRecorder,
    collect,
    current_parent_id,
    current_trace_id,
    new_span_id,
    new_trace_id,
    record_span,
    recorder,
    set_ambient_trace,
    span,
    trace_context,
    track,
)


@pytest.fixture(autouse=True)
def _clean_context():
    """Every test starts with no ambient trace and leaves none behind."""
    set_ambient_trace(None)
    yield
    set_ambient_trace(None)


class TestIds:
    def test_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(200)}
        assert len(ids) == 200
        assert all(t.startswith("t-") for t in ids)

    def test_span_ids_are_unique_across_threads(self):
        out = []
        lock = threading.Lock()

        def worker():
            local = [new_span_id() for _ in range(100)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == len(out) == 800


class TestSpanRecorder:
    def test_record_and_query_sorted_by_start(self):
        rec = SpanRecorder(proc="unit")
        rec.record({"trace_id": "t1", "span_id": "b", "start": 2.0})
        rec.record({"trace_id": "t1", "span_id": "a", "start": 1.0})
        rec.record({"trace_id": "t2", "span_id": "c", "start": 0.0})
        found = rec.spans_for("t1")
        assert [s["span_id"] for s in found] == ["a", "b"]
        # the recorder stamps its proc label on spans missing one
        assert all(s["proc"] == "unit" for s in found)
        assert len(rec) == 3

    def test_ring_evicts_oldest(self):
        rec = SpanRecorder(ring_size=4)
        for i in range(10):
            rec.record({"trace_id": "t", "span_id": "s%d" % i, "start": float(i)})
        assert len(rec) == 4
        assert [s["span_id"] for s in rec.spans_for("t")] == [
            "s6", "s7", "s8", "s9",
        ]

    def test_configure_shrinks_ring_in_place(self):
        rec = SpanRecorder(ring_size=10)
        for i in range(10):
            rec.record({"trace_id": "t", "span_id": "s%d" % i, "start": float(i)})
        rec.configure(ring_size=3)
        assert len(rec) == 3

    def test_take_removes_only_that_trace(self):
        rec = SpanRecorder()
        rec.record({"trace_id": "t1", "span_id": "a", "start": 1.0})
        rec.record({"trace_id": "t2", "span_id": "b", "start": 1.0})
        taken = rec.take("t1")
        assert [s["span_id"] for s in taken] == ["a"]
        assert rec.spans_for("t1") == []
        assert [s["span_id"] for s in rec.spans_for("t2")] == ["b"]

    def test_ingest_keeps_foreign_proc_and_skips_junk(self):
        rec = SpanRecorder(proc="parent")
        n = rec.ingest(
            [
                {"trace_id": "t", "span_id": "w", "start": 0.0, "proc": "pool-7"},
                "not-a-span",
                None,
            ]
        )
        assert n == 1
        assert rec.spans_for("t")[0]["proc"] == "pool-7"

    def test_ingest_is_idempotent_per_span_id(self):
        # A fork-started pool worker inherits the parent's ring and
        # ships the inherited spans back on its first result item; the
        # second ingest (and re-ingest of locally recorded spans) must
        # not duplicate the tree.
        rec = SpanRecorder(proc="parent")
        rec.record({"trace_id": "t", "span_id": "local", "start": 0.0})
        shipped = [
            {"trace_id": "t", "span_id": "local", "start": 0.0, "proc": "parent"},
            {"trace_id": "t", "span_id": "w", "start": 1.0, "proc": "pool-7"},
        ]
        assert rec.ingest(shipped) == 1
        assert rec.ingest(shipped) == 0
        assert [s["span_id"] for s in rec.spans_for("t")] == ["local", "w"]

    def test_take_and_eviction_release_span_ids(self):
        rec = SpanRecorder(ring_size=2, proc="parent")
        rec.record({"trace_id": "t", "span_id": "a", "start": 0.0})
        rec.take("t")
        # taken spans may legitimately come back via a later ingest
        assert rec.ingest([{"trace_id": "t", "span_id": "a", "start": 0.0}]) == 1
        # eviction frees the oldest id for re-ingest too
        rec.record({"trace_id": "t", "span_id": "b", "start": 1.0})
        rec.record({"trace_id": "t", "span_id": "c", "start": 2.0})
        assert [s["span_id"] for s in rec.spans_for("t")] == ["b", "c"]
        assert rec.ingest([{"trace_id": "t", "span_id": "a", "start": 0.0}]) == 1

    def test_trace_ids_and_clear(self):
        rec = SpanRecorder()
        rec.record({"trace_id": "t1", "span_id": "a", "start": 0.0})
        rec.record({"trace_id": "t2", "span_id": "b", "start": 0.0})
        assert set(rec.trace_ids()) == {"t1", "t2"}
        rec.clear()
        assert len(rec) == 0

    def test_jsonl_sink_appends_one_object_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rec = SpanRecorder()
        rec.configure(jsonl_path=str(path))
        rec.record({"trace_id": "t", "span_id": "a", "start": 0.0})
        rec.record({"trace_id": "t", "span_id": "b", "start": 1.0})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["span_id"] for l in lines] == ["a", "b"]


class TestContext:
    def test_no_ambient_trace_by_default(self):
        assert current_trace_id() is None
        assert current_parent_id() is None

    def test_trace_context_scopes_and_restores(self):
        with trace_context("t-x", "s-p"):
            assert current_trace_id() == "t-x"
            assert current_parent_id() == "s-p"
            with trace_context(None):
                # nesting None disables the trace inside the block
                assert current_trace_id() is None
            assert current_trace_id() == "t-x"
        assert current_trace_id() is None

    def test_set_ambient_trace_is_unscoped(self):
        set_ambient_trace("t-amb", "s-amb")
        assert current_trace_id() == "t-amb"
        set_ambient_trace(None)
        assert current_trace_id() is None


class TestSpan:
    def test_span_noop_without_active_trace(self):
        rec = recorder()
        before = len(rec)
        with span("unit.noop") as s:
            assert s.span_id is None
        assert len(rec) == before

    def test_span_records_and_parents_nested_spans(self):
        tid = new_trace_id()
        with trace_context(tid):
            with span("unit.outer", kind="test") as outer:
                with span("unit.inner") as inner:
                    pass
        spans = recorder().take(tid)
        by_name = {s["name"]: s for s in spans}
        assert set(by_name) == {"unit.outer", "unit.inner"}
        assert by_name["unit.inner"]["parent_id"] == outer.span_id
        assert by_name["unit.outer"]["parent_id"] is None
        assert by_name["unit.outer"]["attrs"] == {"kind": "test"}
        assert by_name["unit.inner"]["span_id"] == inner.span_id
        assert by_name["unit.outer"]["duration"] >= 0.0

    def test_span_marks_error_and_propagates(self):
        tid = new_trace_id()
        with pytest.raises(ValueError):
            with trace_context(tid):
                with span("unit.boom"):
                    raise ValueError("x")
        (recorded,) = recorder().take(tid)
        assert recorded["attrs"]["error"] == "ValueError"

    def test_disabled_flag_suppresses_recording(self, monkeypatch):
        monkeypatch.setattr(obs_spans, "_ENABLED", False)
        assert not obs_spans.enabled()
        tid = new_trace_id()
        with trace_context(tid):
            with span("unit.off") as s:
                assert s.span_id is None
            assert record_span("unit.off2", start=0.0, duration=0.0) is None
        assert recorder().spans_for(tid) == []

    def test_record_span_with_explicit_ids(self):
        tid = new_trace_id()
        sid = record_span(
            "unit.explicit",
            start=123.0,
            duration=0.5,
            trace_id=tid,
            parent_id="s-parent",
            span_id="s-fixed",
            extra=7,
        )
        assert sid == "s-fixed"
        (recorded,) = recorder().take(tid)
        assert recorded["parent_id"] == "s-parent"
        assert recorded["attrs"] == {"extra": 7}

    def test_record_span_without_context_is_noop(self):
        assert record_span("unit.orphan", start=0.0, duration=0.0) is None


class TestCollect:
    def test_track_without_collector_is_shared_noop(self):
        first = track("phase")
        second = track("phase")
        assert first is second  # the shared null tracker: zero alloc
        with first:
            pass

    def test_collect_aggregates_phases_into_child_spans(self):
        tid = new_trace_id()
        with trace_context(tid):
            with collect("unit.solve", engine="x") as acc:
                assert acc == {}
                for _ in range(5):
                    with track("unit.eval"):
                        pass
                with track("unit.accept"):
                    pass
        spans = recorder().take(tid)
        by_name = {s["name"]: s for s in spans}
        assert set(by_name) == {"unit.solve", "unit.eval", "unit.accept"}
        parent = by_name["unit.solve"]
        assert parent["attrs"] == {"engine": "x"}
        eval_span = by_name["unit.eval"]
        assert eval_span["parent_id"] == parent["span_id"]
        assert eval_span["attrs"]["calls"] == 5
        assert eval_span["attrs"]["aggregated"] is True
        assert by_name["unit.accept"]["attrs"]["calls"] == 1

    def test_collect_inactive_yields_none(self):
        with collect("unit.idle") as acc:
            assert acc is None
