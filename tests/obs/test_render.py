"""Rendering helpers: quantile estimation, the top table, span trees."""

import pytest

from repro.obs.render import format_span_tree, histogram_quantile, render_top


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        assert histogram_quantile({"buckets": [], "count": 0}, 0.5) is None
        assert histogram_quantile({}, 0.5) is None

    def test_linear_interpolation_within_bucket(self):
        # 10 observations all in the (0, 1] bucket: the median sits at
        # half the bucket span.
        snap = {"buckets": [[1.0, 10], [2.0, 10]], "count": 10}
        assert histogram_quantile(snap, 0.5) == pytest.approx(0.5)
        # 5 in (0,1], 5 in (1,2]: p50 lands on the first bound, p90
        # interpolates 80% into the second bucket.
        snap = {"buckets": [[1.0, 5], [2.0, 10]], "count": 10}
        assert histogram_quantile(snap, 0.5) == pytest.approx(1.0)
        assert histogram_quantile(snap, 0.9) == pytest.approx(1.8)

    def test_above_last_bound_clamps(self):
        # All observations overflowed every bucket: clamp to the last
        # finite bound rather than inventing +Inf.
        snap = {"buckets": [[1.0, 0], [2.0, 0]], "count": 4}
        assert histogram_quantile(snap, 0.99) == 2.0

    def test_quantile_domain_is_validated(self):
        snap = {"buckets": [[1.0, 1]], "count": 1}
        with pytest.raises(ValueError):
            histogram_quantile(snap, 1.5)


class TestRenderTop:
    def test_daemon_payload(self):
        out = render_top(
            {
                "shard": "s0",
                "uptime_s": 42.0,
                "engine": "batched",
                "queue": {"depth": 1, "max_depth": 8, "running": 2, "shed": 0},
                "jobs": {"submitted": 10, "completed": 9, "cache_hits": 5},
                "histograms": {
                    "solve_wall_seconds": {
                        "buckets": [[0.1, 4], [1.0, 4]],
                        "count": 4,
                        "sum": 0.2,
                    }
                },
            }
        )
        assert "daemon up 42s" in out
        assert "10 submitted, 9 completed, 0 shed" in out
        row = next(line for line in out.splitlines() if line.startswith("s0"))
        assert "batched" in row
        assert "1/8" in row  # queue depth / max depth
        assert "50%" in row  # cache hit ratio

    def test_router_payload_with_health_list(self):
        daemon = {
            "queue": {"depth": 0, "max_depth": None, "running": 0, "shed": 0},
            "jobs": {"submitted": 2, "completed": 2, "cache_hits": 0},
            "engine": None,
            "histograms": {},
        }
        out = render_top(
            {
                "role": "router",
                "uptime_s": 7.0,
                "shard_health": [
                    {"name": "s0", "up": True},
                    {"name": "s1", "up": False},
                ],
                "shards": {"s0": daemon, "s1": {"error": "HTTP 503"}},
                "fleet": {"jobs": {"submitted": 2, "completed": 2, "shed": 0}},
            }
        )
        assert "router up 7s · 2 shard(s)" in out
        s0 = next(line for line in out.splitlines() if line.startswith("s0"))
        s1 = next(line for line in out.splitlines() if line.startswith("s1"))
        assert "up" in s0 and "0/inf" in s0
        assert "DOWN" in s1


class TestFormatSpanTree:
    def test_empty(self):
        assert format_span_tree([]) == "(no spans)"

    def test_tree_indentation_and_sibling_order(self):
        spans = [
            {"span_id": "r", "parent_id": None, "name": "root",
             "start": 0.0, "duration": 1.0, "proc": "d0"},
            {"span_id": "b", "parent_id": "r", "name": "second",
             "start": 2.0, "duration": 0.1, "attrs": {"k": "v"}},
            {"span_id": "a", "parent_id": "r", "name": "first",
             "start": 1.0, "duration": 0.1},
        ]
        lines = format_span_tree(spans).splitlines()
        assert lines[0].startswith("root")
        assert "proc=d0" in lines[0]
        # children indented under the root, ordered by start time
        assert lines[1].startswith("  first")
        assert lines[2].startswith("  second")
        assert "k=v" in lines[2]

    def test_orphan_parent_becomes_root(self):
        spans = [
            {"span_id": "x", "parent_id": "missing", "name": "adrift",
             "start": 0.0, "duration": 0.1},
        ]
        lines = format_span_tree(spans).splitlines()
        assert lines[0].startswith("adrift")
