"""Tests for the seeded instance generators."""

import numpy as np
import pytest

from repro import MappingRule, PlatformClass
from repro.generators import (
    dvfs_speed_ladder,
    random_application,
    random_applications,
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
    random_fully_homogeneous_platform,
    rng_from,
    small_random_problem,
    special_app_family,
    streaming_application,
)


class TestRngFrom:
    def test_int_seed(self):
        assert isinstance(rng_from(3), np.random.Generator)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_from(g) is g

    def test_determinism(self):
        a = random_application(rng_from(5), 4)
        b = random_application(rng_from(5), 4)
        assert a.works == b.works
        assert a.output_sizes == b.output_sizes


class TestApplications:
    def test_random_application_shape(self, rng):
        app = random_application(rng, 6, work_range=(2, 3), data_range=(0, 1))
        assert app.n_stages == 6
        assert all(2 <= w <= 3 for w in app.works)
        assert all(0 <= d <= 1 for d in app.output_sizes)

    def test_integer_mode(self, rng):
        app = random_application(rng, 5, integer=True)
        assert all(w == int(w) and w >= 1 for w in app.works)
        assert all(d == int(d) for d in app.output_sizes)

    def test_random_applications_weights(self, rng):
        apps = random_applications(rng, 3, weights=[1.0, 2.0, 3.0])
        assert [a.weight for a in apps] == [1.0, 2.0, 3.0]

    def test_special_app_family(self):
        apps = special_app_family(3, 4, work=2.0)
        assert len(apps) == 3
        for app in apps:
            assert app.is_homogeneous
            assert not app.has_communication
            assert app.total_work == 8.0

    @pytest.mark.parametrize("profile", ["encode", "filter", "analytics"])
    def test_streaming_profiles(self, rng, profile):
        app = streaming_application(rng, 6, profile=profile)
        assert app.n_stages == 6
        assert app.total_work > 0

    def test_streaming_unknown_profile(self, rng):
        with pytest.raises(ValueError):
            streaming_application(rng, 4, profile="bogus")

    def test_analytics_front_loaded(self, rng):
        app = streaming_application(rng, 5, profile="analytics")
        assert app.works[0] > max(app.works[1:])


class TestPlatforms:
    def test_dvfs_ladder(self):
        ladder = dvfs_speed_ladder(2.0, 4, top_ratio=2.0)
        assert len(ladder) == 4
        assert ladder[0] == pytest.approx(2.0)
        assert ladder[-1] == pytest.approx(4.0)
        assert all(a < b for a, b in zip(ladder, ladder[1:]))

    def test_dvfs_single_mode(self):
        assert dvfs_speed_ladder(3.0, 1) == (3.0,)

    def test_dvfs_invalid(self):
        with pytest.raises(ValueError):
            dvfs_speed_ladder(1.0, 0)

    def test_fully_homogeneous(self, rng):
        p = random_fully_homogeneous_platform(rng, 4, n_modes=3)
        assert p.platform_class is PlatformClass.FULLY_HOMOGENEOUS
        assert all(proc.n_modes == 3 for proc in p.processors)

    def test_comm_homogeneous(self, rng):
        p = random_comm_homogeneous_platform(rng, 5)
        assert p.platform_class in (
            PlatformClass.COMM_HOMOGENEOUS,
            PlatformClass.FULLY_HOMOGENEOUS,  # rare identical draw
        )
        assert p.has_homogeneous_links

    def test_fully_heterogeneous(self, rng):
        p = random_fully_heterogeneous_platform(rng, 4, n_apps=2)
        assert p.platform_class is PlatformClass.FULLY_HETEROGENEOUS
        # All pairwise links defined.
        assert len(p.links) == 6
        assert len(p.in_links) == 8 and len(p.out_links) == 8


class TestScenarios:
    @pytest.mark.parametrize("cls", list(PlatformClass))
    def test_small_random_problem_cells(self, cls):
        problem = small_random_problem(0, platform_class=cls)
        assert problem.platform.platform_class in (
            cls,
            PlatformClass.FULLY_HOMOGENEOUS,
        )

    def test_one_to_one_gets_enough_processors(self):
        for seed in range(5):
            problem = small_random_problem(
                seed, rule=MappingRule.ONE_TO_ONE, stage_range=(2, 4)
            )
            assert problem.platform.n_processors >= problem.n_stages_total

    def test_determinism(self):
        p1 = small_random_problem(9)
        p2 = small_random_problem(9)
        assert p1.apps == p2.apps
