"""Tests for the general-mappings extension (the Section 3.3 argument)."""

import itertools
import math

import pytest

from repro.extensions import (
    GeneralMappingPeriodReduction,
    min_period_general_mapping,
)
from repro.extensions.general_mappings import best_interval_period_no_comm


def brute_force_makespan(works, p, speed=1.0):
    best = math.inf
    for assignment in itertools.product(range(p), repeat=len(works)):
        loads = [0.0] * p
        for w, u in zip(works, assignment):
            loads[u] += w
        best = min(best, max(loads) / speed)
    return best


class TestExactGeneralSolver:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        p = int(rng.integers(2, 4))
        works = [float(rng.integers(1, 9)) for _ in range(n)]
        fast, assignment = min_period_general_mapping(works, p)
        slow = brute_force_makespan(works, p)
        assert fast == pytest.approx(slow)
        # The returned assignment achieves the reported period.
        loads = [0.0] * p
        for w, u in zip(works, assignment):
            loads[u] += w
        assert max(loads) == pytest.approx(fast)

    def test_speed_scaling(self):
        period, _ = min_period_general_mapping([4, 4], 2, speed=2.0)
        assert period == pytest.approx(2.0)

    def test_degenerate(self):
        with pytest.raises(ValueError):
            min_period_general_mapping([], 2)
        with pytest.raises(ValueError):
            min_period_general_mapping([1.0], 0)


class TestSection33Reduction:
    def test_yes_instance(self):
        red = GeneralMappingPeriodReduction.build([3, 1, 1, 2, 2, 1])
        assert red.decide()
        period, assignment = min_period_general_mapping(red.values, 2)
        subset = red.partition_from_assignment(assignment)
        inside = sum(red.values[i] for i in subset)
        assert 2 * inside == sum(red.values)

    def test_no_instance(self):
        # Odd total: no balanced split.
        red = GeneralMappingPeriodReduction.build([2, 2, 1])
        assert not red.decide()

    def test_forward_transfer(self):
        red = GeneralMappingPeriodReduction.build([1, 2, 3])
        assignment = red.assignment_from_partition(frozenset({0, 1}))
        loads = [0.0, 0.0]
        for w, u in zip(red.values, assignment):
            loads[u] += w
        assert loads == [3.0, 3.0]

    def test_interval_rule_gap(self):
        """The price of the interval restriction: general mappings may group
        non-adjacent stages ({2, 2} vs {3}), which no chain cut can."""
        red = GeneralMappingPeriodReduction.build([2, 3, 2])
        general, _ = min_period_general_mapping(red.values, 2)
        interval = red.interval_rule_period()
        assert general == pytest.approx(4.0)  # {2, 2} on one processor
        assert interval == pytest.approx(5.0)  # best cut: [2 | 3, 2]
        assert interval > general
        # But the interval rule is what keeps the problem polynomial.

    def test_gap_vanishes_on_uniform_chains(self):
        red = GeneralMappingPeriodReduction.build([2, 2, 2, 2])
        general, _ = min_period_general_mapping(red.values, 2)
        assert red.interval_rule_period() == pytest.approx(general)
