"""Tests for the replication extension (the paper's future work, §6)."""

import math

import pytest

from repro import Application, CommunicationModel, InvalidMappingError, Platform
from repro.algorithms.interval_period import single_app_period_table
from repro.extensions import (
    ReplicatedAssignment,
    ReplicatedMapping,
    evaluate_replicated,
    replicated_period_table,
    simulate_replicated,
)
from repro.generators import random_application, rng_from

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


def rmap(*entries):
    return ReplicatedMapping(
        assignments=tuple(
            ReplicatedAssignment(app=a, interval=iv, procs=ps, speeds=ss)
            for a, iv, ps, ss in entries
        )
    )


class TestReplicatedStructures:
    def test_assignment_validation(self):
        with pytest.raises(InvalidMappingError):
            ReplicatedAssignment(app=0, interval=(1, 0), procs=(0,), speeds=(1.0,))
        with pytest.raises(InvalidMappingError):
            ReplicatedAssignment(app=0, interval=(0, 0), procs=(), speeds=())
        with pytest.raises(InvalidMappingError):
            ReplicatedAssignment(
                app=0, interval=(0, 0), procs=(0, 0), speeds=(1.0, 1.0)
            )
        with pytest.raises(InvalidMappingError):
            ReplicatedAssignment(
                app=0, interval=(0, 0), procs=(0, 1), speeds=(1.0,)
            )

    def test_mapping_validation(self):
        apps = (Application.from_lists([2, 2], [0, 0]),)
        platform = Platform.fully_homogeneous(3, [1.0])
        good = rmap((0, (0, 0), (0, 1), (1.0, 1.0)), (0, (1, 1), (2,), (1.0,)))
        good.validate(apps, platform)
        # Processor reuse across replica sets.
        bad = rmap((0, (0, 0), (0, 1), (1.0, 1.0)), (0, (1, 1), (1,), (1.0,)))
        with pytest.raises(InvalidMappingError):
            bad.validate(apps, platform)
        # Uncovered stage.
        bad2 = rmap((0, (0, 0), (0,), (1.0,)))
        with pytest.raises(InvalidMappingError):
            bad2.validate(apps, platform)


class TestCycleOverKLaw:
    def test_two_replicas_halve_the_period(self):
        app = Application.from_lists([8], [0], input_data_size=0)
        platform = Platform.fully_homogeneous(2, [1.0])
        solo = rmap((0, (0, 0), (0,), (1.0,)))
        duo = rmap((0, (0, 0), (0, 1), (1.0, 1.0)))
        v1 = evaluate_replicated([app], platform, solo)
        v2 = evaluate_replicated([app], platform, duo)
        assert v1.period == pytest.approx(8.0)
        assert v2.period == pytest.approx(4.0)
        # Latency is NOT improved by replication.
        assert v2.latency == pytest.approx(v1.latency)
        # Energy doubles (two enrolled replicas).
        assert v2.energy == pytest.approx(2 * v1.energy)

    def test_slowest_replica_paces(self):
        app = Application.from_lists([12], [0])
        platform = Platform.fully_homogeneous(2, [1.0, 3.0])
        mixed = rmap((0, (0, 0), (0, 1), (1.0, 3.0)))
        v = evaluate_replicated([app], platform, mixed)
        # max(12/1, 12/3) / 2 = 6.
        assert v.period == pytest.approx(6.0)

    def test_degenerate_k1_matches_plain_evaluation(self):
        from repro import Assignment, Mapping, evaluate

        rng = rng_from(3)
        app = random_application(rng, 4)
        platform = Platform.fully_homogeneous(4, [2.0], bandwidth=1.5)
        intervals = [(0, 1), (2, 3)]
        plain = Mapping.from_assignments(
            Assignment(app=0, interval=iv, proc=u, speed=2.0)
            for u, iv in enumerate(intervals)
        )
        repl = rmap(*[(0, iv, (u,), (2.0,)) for u, iv in enumerate(intervals)])
        for model in (OVERLAP, NO_OVERLAP):
            v_plain = evaluate([app], platform, plain, model=model)
            v_repl = evaluate_replicated(
                [app], platform, repl, model=model
            )
            assert v_repl.period == pytest.approx(v_plain.period)
            assert v_repl.latency == pytest.approx(v_plain.latency)
            assert v_repl.energy == pytest.approx(v_plain.energy)


class TestReplicatedPeriodDP:
    def test_reduces_to_plain_dp_when_k1_suffices(self):
        # With p <= n and communication floors, compare against plain DP:
        # the replicated optimum can only be <= the plain optimum.
        rng = rng_from(5)
        app = random_application(rng, 5)
        plain = single_app_period_table(app, 5, 2.0, 1.0, OVERLAP)
        repl = replicated_period_table(app, 5, 2.0, 1.0, OVERLAP)
        for q in range(1, 6):
            assert repl.period(q) <= plain.period(q) + 1e-12

    def test_replication_beats_intervals_on_heavy_stages(self):
        # A single heavy stage cannot be split by the interval rule, but
        # replication parallelizes it across data sets.
        app = Application.from_lists([10.0], [0.0])
        plain = single_app_period_table(app, 4, 1.0, 1.0, OVERLAP)
        repl = replicated_period_table(app, 4, 1.0, 1.0, OVERLAP)
        assert plain.period(4) == pytest.approx(10.0)
        assert repl.period(4) == pytest.approx(2.5)  # 4 replicas

    def test_reconstruction_consistent(self):
        rng = rng_from(8)
        app = random_application(rng, 4)
        table = replicated_period_table(app, 6, 2.0, 1.0, OVERLAP)
        for q in range(1, 7):
            placements = table.reconstruct(q)
            # Covering, consecutive, total replicas <= q.
            assert placements[0][0][0] == 0
            assert placements[-1][0][1] == app.n_stages - 1
            assert sum(k for _, k in placements) <= q
            from repro.algorithms.interval_period import interval_cycle

            achieved = max(
                interval_cycle(app, iv, 2.0, 1.0, OVERLAP) / k
                for iv, k in placements
            )
            assert achieved == pytest.approx(table.period(q))

    def test_monotone_in_q(self):
        rng = rng_from(9)
        app = random_application(rng, 4)
        table = replicated_period_table(app, 8, 1.0, 1.0, OVERLAP)
        values = [table.period(q) for q in range(1, 9)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestReplicatedSimulation:
    @pytest.mark.parametrize("model", [OVERLAP, NO_OVERLAP])
    def test_simulation_matches_analytic_period(self, model):
        app = Application.from_lists([6, 9], [1, 1], input_data_size=1)
        platform = Platform.fully_homogeneous(4, [1.0, 3.0], bandwidth=2.0)
        mapping = rmap(
            (0, (0, 0), (0,), (3.0,)),
            (0, (1, 1), (1, 2, 3), (3.0, 3.0, 3.0)),
        )
        mapping.validate([app], platform)
        v = evaluate_replicated([app], platform, mapping, model=model)
        completions = simulate_replicated(
            [app], platform, mapping, 300, model=model
        )[0]
        window = len(completions) // 2
        measured = (completions[-1] - completions[-1 - window]) / window
        assert measured == pytest.approx(v.periods[0], rel=1e-9)

    def test_round_robin_interleaves_replicas(self):
        app = Application.from_lists([4], [0])
        platform = Platform.fully_homogeneous(2, [1.0])
        mapping = rmap((0, (0, 0), (0, 1), (1.0, 1.0)))
        completions = simulate_replicated([app], platform, mapping, 10)[0]
        # Two replicas of a 4-unit stage: completions at 4,4,8,8,12,12...
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert gaps == pytest.approx([0, 4, 0, 4, 0, 4, 0, 4, 0])

    def test_invalid_dataset_count(self):
        app = Application.from_lists([1], [0])
        platform = Platform.fully_homogeneous(1, [1.0])
        mapping = rmap((0, (0, 0), (0,), (1.0,)))
        with pytest.raises(ValueError):
            simulate_replicated([app], platform, mapping, 0)
