"""Tests for the from-scratch Hungarian algorithm, validated against brute
force and against ``scipy.optimize.linear_sum_assignment``."""

import math

import numpy as np
import pytest

from repro.matching import solve_assignment
from repro.matching.hungarian import brute_force_assignment


class TestBasics:
    def test_identity(self):
        cost = [[0.0, 1.0], [1.0, 0.0]]
        r = solve_assignment(cost)
        assert r.row_to_col == (0, 1)
        assert r.total_cost == 0.0

    def test_crossing(self):
        cost = [[10.0, 1.0], [1.0, 10.0]]
        r = solve_assignment(cost)
        assert r.row_to_col == (1, 0)
        assert r.total_cost == 2.0

    def test_rectangular(self):
        cost = [[5.0, 1.0, 9.0]]
        r = solve_assignment(cost)
        assert r.row_to_col == (1,)
        assert r.total_cost == 1.0

    def test_empty(self):
        r = solve_assignment([])
        assert r.row_to_col == ()
        assert r.total_cost == 0.0

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment([[1.0], [1.0]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment([[1.0, 2.0], [1.0]])


class TestForbiddenPairs:
    def test_routes_around_inf(self):
        inf = math.inf
        cost = [[inf, 1.0], [1.0, inf]]
        r = solve_assignment(cost)
        assert r.row_to_col == (1, 0)

    def test_infeasible_row(self):
        inf = math.inf
        assert solve_assignment([[inf, inf]]) is None

    def test_infeasible_by_contention(self):
        # Both rows can only use column 0.
        inf = math.inf
        cost = [[1.0, inf], [2.0, inf]]
        assert solve_assignment(cost) is None

    def test_forced_expensive_edge(self):
        inf = math.inf
        cost = [[inf, 5.0], [3.0, 4.0]]
        r = solve_assignment(cost)
        assert r.row_to_col == (1, 0)
        assert r.total_cost == 8.0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_square(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        cost = rng.uniform(0, 10, size=(n, n)).tolist()
        fast = solve_assignment(cost)
        slow = brute_force_assignment(cost)
        assert fast.total_cost == pytest.approx(slow.total_cost)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_rectangular(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 5))
        m = n + int(rng.integers(0, 4))
        cost = rng.uniform(0, 10, size=(n, m)).tolist()
        fast = solve_assignment(cost)
        slow = brute_force_assignment(cost)
        assert fast.total_cost == pytest.approx(slow.total_cost)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_with_forbidden(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(2, 5))
        m = n + 1
        cost = rng.uniform(0, 10, size=(n, m))
        mask = rng.random(size=(n, m)) < 0.4
        cost = np.where(mask, math.inf, cost).tolist()
        fast = solve_assignment(cost)
        slow = brute_force_assignment(cost)
        if slow is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast.total_cost == pytest.approx(slow.total_cost)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_matrices(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(2, 30))
        m = n + int(rng.integers(0, 10))
        cost = rng.uniform(0, 100, size=(n, m))
        fast = solve_assignment(cost.tolist())
        rows, cols = scipy_opt.linear_sum_assignment(cost)
        assert fast.total_cost == pytest.approx(float(cost[rows, cols].sum()))

    def test_assignment_is_a_matching(self):
        rng = np.random.default_rng(9)
        cost = rng.uniform(0, 1, size=(20, 25)).tolist()
        r = solve_assignment(cost)
        assert len(set(r.row_to_col)) == 20
