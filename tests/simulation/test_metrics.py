"""Tests for the steady-state metric extraction helpers."""

import pytest

from repro.simulation import (
    latencies_from_trace,
    resource_utilization,
    simulate,
    steady_state_period,
)
from repro.paper import (
    figure1_applications,
    figure1_platform,
    mapping_optimal_period,
)


class TestSteadyStatePeriod:
    def test_regular_completions(self):
        completions = [3.0 + 2.0 * k for k in range(10)]
        assert steady_state_period(completions) == pytest.approx(2.0)

    def test_warmup_excluded(self):
        # A slow start must not bias the steady-state estimate.
        completions = [10.0] + [12.0 + 2.0 * k for k in range(20)]
        assert steady_state_period(completions) == pytest.approx(2.0)

    def test_window_override(self):
        completions = [0.0, 1.0, 2.0, 10.0]
        assert steady_state_period(completions, window=1) == pytest.approx(8.0)

    def test_degenerate(self):
        assert steady_state_period([5.0]) == 0.0
        assert steady_state_period([]) == 0.0


class TestLatencies:
    def test_basic(self):
        assert latencies_from_trace([5.0, 7.0], [1.0, 2.0]) == [4.0, 5.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            latencies_from_trace([1.0], [])


class TestUtilization:
    def test_bottleneck_is_saturated(self):
        apps = figure1_applications()
        platform = figure1_platform()
        mapping = mapping_optimal_period()
        result = simulate(
            apps, platform, mapping, 300, keep_trace=True
        )
        util = resource_utilization(result.trace)
        # The period-1 mapping saturates every CPU ("no idle time").
        cpu_utils = [u for res, u in util.items() if res[0] == "cpu"]
        assert all(u > 0.95 for u in cpu_utils)

    def test_bounded_by_one(self):
        apps = figure1_applications()
        platform = figure1_platform()
        result = simulate(
            apps, platform, mapping_optimal_period(), 100, keep_trace=True
        )
        util = resource_utilization(result.trace)
        assert all(u <= 1.0 + 1e-9 for u in util.values())

    def test_empty_trace(self):
        from repro.simulation.trace import Trace

        assert resource_utilization(Trace()) == {}
