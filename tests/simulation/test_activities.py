"""Unit tests for activity-chain construction."""

import pytest

from repro import (
    Application,
    Assignment,
    CommunicationModel,
    Mapping,
    Platform,
)
from repro.simulation import build_activity_chain
from repro.simulation.activities import cpu, link

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


@pytest.fixture
def split_setting():
    app = Application.from_lists([2, 4], [3, 5], input_data_size=1)
    platform = Platform.fully_homogeneous(3, [2.0], bandwidth=2.0)
    mapping = Mapping.from_assignments(
        [
            Assignment(app=0, interval=(0, 0), proc=1, speed=2.0),
            Assignment(app=0, interval=(1, 1), proc=2, speed=2.0),
        ]
    )
    return app, platform, mapping


class TestChainStructure:
    def test_alternating_kinds(self, split_setting):
        app, platform, mapping = split_setting
        chain = build_activity_chain([app], platform, mapping, 0, OVERLAP)
        assert [x.kind for x in chain] == [
            "comm", "comp", "comm", "comp", "comm",
        ]

    def test_durations(self, split_setting):
        app, platform, mapping = split_setting
        chain = build_activity_chain([app], platform, mapping, 0, OVERLAP)
        # in 1/2, comp 2/2, mid 3/2, comp 4/2, out 5/2.
        assert [x.duration for x in chain] == pytest.approx(
            [0.5, 1.0, 1.5, 2.0, 2.5]
        )

    def test_overlap_resources(self, split_setting):
        app, platform, mapping = split_setting
        chain = build_activity_chain([app], platform, mapping, 0, OVERLAP)
        assert chain[0].resources == (link(0, 0),)
        assert chain[1].resources == (cpu(1),)
        assert chain[2].resources == (link(0, 1),)
        assert chain[3].resources == (cpu(2),)
        assert chain[4].resources == (link(0, 2),)

    def test_no_overlap_resources(self, split_setting):
        app, platform, mapping = split_setting
        chain = build_activity_chain([app], platform, mapping, 0, NO_OVERLAP)
        # Input comm occupies only the receiving CPU (Pin is dedicated I/O).
        assert chain[0].resources == (cpu(1),)
        # The mid communication occupies both endpoint CPUs.
        assert set(chain[2].resources) == {cpu(1), cpu(2)}
        # Output comm occupies only the sender.
        assert chain[4].resources == (cpu(2),)

    def test_zero_size_communications_have_zero_duration(self):
        app = Application.from_lists([2], [0], input_data_size=0)
        platform = Platform.fully_homogeneous(1, [1.0])
        mapping = Mapping.single_app([((0, 0), 0, 1.0)])
        chain = build_activity_chain([app], platform, mapping, 0, OVERLAP)
        assert chain[0].duration == 0.0
        assert chain[2].duration == 0.0

    def test_whole_app_single_interval(self):
        app = Application.from_lists([2, 4], [3, 5], input_data_size=1)
        platform = Platform.fully_homogeneous(1, [2.0])
        mapping = Mapping.single_app([((0, 1), 0, 2.0)])
        chain = build_activity_chain([app], platform, mapping, 0, OVERLAP)
        assert len(chain) == 3
        # Computation covers both stages: (2 + 4) / 2.
        assert chain[1].duration == pytest.approx(3.0)
