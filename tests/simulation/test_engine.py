"""Tests for the discrete-event simulator: the operational model must
reproduce Equations (3), (4) and (5) exactly on deterministic runs."""

import math

import pytest

from repro import CommunicationModel, Criterion, MappingRule
from repro.core.evaluation import application_latency, application_period
from repro.generators import small_random_problem
from repro.paper import (
    figure1_applications,
    figure1_platform,
    mapping_compromise_energy_46,
    mapping_min_energy,
    mapping_optimal_latency,
    mapping_optimal_period,
)
from repro.simulation import build_activity_chain, simulate

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP
BOTH_MODELS = [OVERLAP, NO_OVERLAP]

ALL_FIG1_MAPPINGS = [
    mapping_optimal_period,
    mapping_optimal_latency,
    mapping_min_energy,
    mapping_compromise_energy_46,
]


class TestActivityChains:
    def test_chain_length(self):
        apps = figure1_applications()
        platform = figure1_platform()
        mapping = mapping_optimal_period()
        # App2 is split in two intervals: 2 comps + 3 comms.
        chain = build_activity_chain(apps, platform, mapping, 1, OVERLAP)
        assert len(chain) == 5
        kinds = [a.kind for a in chain]
        assert kinds == ["comm", "comp", "comm", "comp", "comm"]

    def test_durations_sum_to_latency(self):
        apps = figure1_applications()
        platform = figure1_platform()
        for make in ALL_FIG1_MAPPINGS:
            mapping = make()
            for a in mapping.applications:
                chain = build_activity_chain(apps, platform, mapping, a, OVERLAP)
                total = sum(x.duration for x in chain)
                assert total == pytest.approx(
                    application_latency(apps, platform, mapping, a)
                )

    def test_no_overlap_resources_are_cpus(self):
        apps = figure1_applications()
        platform = figure1_platform()
        mapping = mapping_optimal_period()
        chain = build_activity_chain(apps, platform, mapping, 1, NO_OVERLAP)
        comm_between = [
            x for x in chain if x.kind == "comm" and x.position == 1
        ][0]
        assert len(comm_between.resources) == 2
        assert all(r[0] == "cpu" for r in comm_between.resources)


class TestSimulatorMatchesAnalyticModel:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("make", ALL_FIG1_MAPPINGS)
    def test_figure1_mappings(self, make, model):
        apps = figure1_applications()
        platform = figure1_platform()
        mapping = make()
        result = simulate(apps, platform, mapping, 300, model=model)
        for a in mapping.applications:
            assert result.measured_period(a) == pytest.approx(
                application_period(apps, platform, mapping, a, model)
            )
            assert result.measured_latency(a) == pytest.approx(
                application_latency(apps, platform, mapping, a)
            )

    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed, model):
        problem = small_random_problem(seed, model=model, stage_range=(1, 4))
        from repro.algorithms.exact import exact_minimize

        mapping = exact_minimize(problem, Criterion.PERIOD).mapping
        result = simulate(
            problem.apps, problem.platform, mapping, 300, model=model
        )
        for a in mapping.applications:
            analytic = application_period(
                problem.apps, problem.platform, mapping, a, model
            )
            assert result.measured_period(a) == pytest.approx(analytic), seed

    def test_latency_under_spaced_arrivals(self):
        # With arrivals slower than the period, every data set sees an empty
        # pipeline: all latencies equal Equation (5).
        apps = figure1_applications()
        platform = figure1_platform()
        mapping = mapping_optimal_period()
        result = simulate(
            apps, platform, mapping, 50, model=OVERLAP, release_period=10.0
        )
        for a in mapping.applications:
            expected = application_latency(apps, platform, mapping, a)
            for k in range(50):
                assert result.measured_latency(a, k) == pytest.approx(expected)


class TestSimulatorBehaviour:
    def test_trace_recording(self):
        apps = figure1_applications()
        platform = figure1_platform()
        mapping = mapping_optimal_period()
        result = simulate(
            apps, platform, mapping, 10, keep_trace=True
        )
        assert result.trace is not None
        # 10 datasets x (3 activities for app1 + 5 for app2).
        assert len(result.trace) == 10 * (3 + 5)
        # Resource exclusivity: no two records overlap on a resource.
        by_resource = {}
        for r in result.trace:
            for res in r.resources:
                by_resource.setdefault(res, []).append((r.start, r.finish))
        for intervals in by_resource.values():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-12

    def test_dataset_order_preserved(self):
        apps = figure1_applications()
        platform = figure1_platform()
        result = simulate(apps, platform, mapping_optimal_period(), 50)
        for comps in result.completions.values():
            assert all(a <= b for a, b in zip(comps, comps[1:]))

    def test_jitter_is_seeded(self):
        apps = figure1_applications()
        platform = figure1_platform()
        m = mapping_optimal_period()
        r1 = simulate(apps, platform, m, 50, jitter=0.2, seed=5)
        r2 = simulate(apps, platform, m, 50, jitter=0.2, seed=5)
        r3 = simulate(apps, platform, m, 50, jitter=0.2, seed=6)
        assert r1.completions == r2.completions
        assert r1.completions != r3.completions

    def test_jitter_degrades_gracefully(self):
        apps = figure1_applications()
        platform = figure1_platform()
        m = mapping_optimal_period()
        clean = simulate(apps, platform, m, 400)
        noisy = simulate(apps, platform, m, 400, jitter=0.1, seed=3)
        for a in m.applications:
            ratio = noisy.measured_period(a) / clean.measured_period(a)
            # Mild noise may slow the pipeline slightly, never catastrophically.
            assert 0.9 <= ratio <= 1.3

    def test_invalid_parameters(self):
        apps = figure1_applications()
        platform = figure1_platform()
        m = mapping_optimal_period()
        with pytest.raises(ValueError):
            simulate(apps, platform, m, 0)
        with pytest.raises(ValueError):
            simulate(apps, platform, m, 10, jitter=1.5)
