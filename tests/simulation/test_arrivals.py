"""Tests for arrival schedules: spaced, explicit and Poisson arrivals.

The analytic latency (Equation (5)) assumes an unloaded pipeline; under
bursty arrivals queueing delays stack on top of it.  These tests pin the
boundary: slow arrivals reproduce Eq. (5) exactly, saturation reproduces
the period, and Poisson bursts can only increase latencies.
"""

import pytest

from repro import CommunicationModel
from repro.core.evaluation import application_latency, application_period
from repro.paper import (
    figure1_applications,
    figure1_platform,
    mapping_optimal_period,
)
from repro.simulation import poisson_releases, simulate


@pytest.fixture
def setting():
    return figure1_applications(), figure1_platform(), mapping_optimal_period()


class TestExplicitReleases:
    def test_release_times_respected(self, setting):
        apps, platform, mapping = setting
        times = [0.0, 5.0, 20.0]
        result = simulate(
            apps, platform, mapping, 3, release_times=times
        )
        for a in result.releases:
            assert result.releases[a] == times
            for k in range(3):
                assert result.completions[a][k] >= times[k]

    def test_length_mismatch_rejected(self, setting):
        apps, platform, mapping = setting
        with pytest.raises(ValueError):
            simulate(apps, platform, mapping, 3, release_times=[0.0])

    def test_decreasing_rejected(self, setting):
        apps, platform, mapping = setting
        with pytest.raises(ValueError):
            simulate(
                apps, platform, mapping, 2, release_times=[5.0, 1.0]
            )

    def test_takes_precedence_over_release_period(self, setting):
        apps, platform, mapping = setting
        result = simulate(
            apps,
            platform,
            mapping,
            2,
            release_period=100.0,
            release_times=[0.0, 1.0],
        )
        assert result.releases[0] == [0.0, 1.0]


class TestSlowArrivalsMatchEquation5(object):
    def test_all_latencies_equal_analytic(self, setting):
        apps, platform, mapping = setting
        # Arrivals far slower than the period: no queueing at all.
        result = simulate(
            apps,
            platform,
            mapping,
            20,
            release_times=[100.0 * k for k in range(20)],
        )
        for a in result.completions:
            expected = application_latency(apps, platform, mapping, a)
            for k in range(20):
                assert result.measured_latency(a, k) == pytest.approx(expected)


class TestPoissonArrivals:
    def test_schedule_properties(self):
        times = poisson_releases(200, mean_interval=2.0, seed=3)
        assert len(times) == 200
        assert times[0] == 0.0
        assert all(b >= a for a, b in zip(times, times[1:]))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert 1.4 < mean < 2.6  # exponential with mean 2

    def test_seeded(self):
        assert poisson_releases(10, 1.0, seed=5) == poisson_releases(
            10, 1.0, seed=5
        )
        assert poisson_releases(10, 1.0, seed=5) != poisson_releases(
            10, 1.0, seed=6
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            poisson_releases(0, 1.0)
        with pytest.raises(ValueError):
            poisson_releases(5, 0.0)

    def test_bursts_inflate_latency_beyond_equation5(self, setting):
        """With mean inter-arrival equal to the period, bursts force
        queueing: the mean observed latency strictly exceeds Eq. (5) while
        the minimum still touches it (some data sets arrive into an idle
        pipeline)."""
        apps, platform, mapping = setting
        times = poisson_releases(400, mean_interval=1.0, seed=7)
        result = simulate(
            apps, platform, mapping, 400, release_times=times
        )
        for a in result.completions:
            analytic = application_latency(apps, platform, mapping, a)
            observed = [
                result.measured_latency(a, k) for k in range(400)
            ]
            assert min(observed) >= analytic - 1e-9
            assert sum(observed) / len(observed) > analytic

    def test_throughput_still_bounded_by_period(self, setting):
        """However bursty, the completion rate cannot beat Eq. (3)."""
        apps, platform, mapping = setting
        times = poisson_releases(300, mean_interval=0.5, seed=9)
        result = simulate(
            apps, platform, mapping, 300, release_times=times
        )
        for a in result.completions:
            analytic = application_period(
                apps, platform, mapping, a, CommunicationModel.OVERLAP
            )
            assert result.measured_period(a) >= analytic * (1 - 1e-9)
