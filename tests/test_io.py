"""Tests for the JSON serialization layer."""

import json

import pytest

from repro import CommunicationModel, MappingRule
from repro.generators import small_random_problem
from repro.io import (
    SCHEMA_VERSION,
    SerializationError,
    application_from_dict,
    application_to_dict,
    load_problem,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)
from repro.paper import (
    figure1_applications,
    figure1_platform,
    figure1_problem,
    mapping_optimal_period,
)


class TestApplicationRoundTrip:
    def test_round_trip(self):
        for app in figure1_applications():
            clone = application_from_dict(application_to_dict(app))
            assert clone == app

    def test_json_compatible(self):
        payload = application_to_dict(figure1_applications()[0])
        assert json.loads(json.dumps(payload)) == payload

    def test_missing_field(self):
        with pytest.raises(SerializationError):
            application_from_dict({"works": [1.0]})


class TestPlatformRoundTrip:
    def test_round_trip_simple(self):
        platform = figure1_platform()
        clone = platform_from_dict(platform_to_dict(platform))
        assert clone == platform

    def test_round_trip_heterogeneous(self):
        from repro.generators import (
            random_fully_heterogeneous_platform,
            rng_from,
        )

        platform = random_fully_heterogeneous_platform(rng_from(3), 4, 2)
        clone = platform_from_dict(platform_to_dict(platform))
        assert clone == platform
        # Bandwidth resolution must be preserved exactly.
        for u in range(4):
            for v in range(u + 1, 4):
                assert clone.bandwidth(u, v) == platform.bandwidth(u, v)


class TestMappingRoundTrip:
    def test_round_trip(self):
        mapping = mapping_optimal_period()
        clone = mapping_from_dict(mapping_to_dict(mapping))
        assert clone == mapping


class TestProblemRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_round_trip_random(self, seed):
        from repro import PlatformClass

        problem = small_random_problem(
            seed,
            platform_class=PlatformClass.FULLY_HETEROGENEOUS,
            model=CommunicationModel.NO_OVERLAP,
            n_modes=2,
        )
        clone = problem_from_dict(problem_to_dict(problem))
        assert clone.apps == problem.apps
        assert clone.platform == problem.platform
        assert clone.rule is problem.rule
        assert clone.model is problem.model
        assert clone.energy_model == problem.energy_model

    def test_solutions_identical_after_round_trip(self):
        from repro import Criterion
        from repro.algorithms.exact import exact_minimize

        problem = figure1_problem()
        clone = problem_from_dict(problem_to_dict(problem))
        s1 = exact_minimize(problem, Criterion.PERIOD)
        s2 = exact_minimize(clone, Criterion.PERIOD)
        assert s1.objective == s2.objective
        assert s1.mapping == s2.mapping

    def test_schema_check(self):
        payload = problem_to_dict(figure1_problem())
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SerializationError):
            problem_from_dict(payload)

    def test_file_round_trip(self, tmp_path):
        problem = figure1_problem()
        path = tmp_path / "instance.json"
        save_problem(problem, path)
        clone = load_problem(path)
        assert clone.apps == problem.apps
        assert clone.platform == problem.platform

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_problem(path)


class TestSolutionRoundTrip:
    def solved(self):
        from repro.service import solve_one

        problem = small_random_problem(5)
        return solve_one(problem, strategy="greedy")

    def test_round_trip(self):
        from repro.io import solution_from_dict, solution_to_dict

        solution = self.solved()
        clone = solution_from_dict(solution_to_dict(solution))
        assert clone.mapping == solution.mapping
        assert clone.objective == solution.objective
        assert clone.values == solution.values
        assert clone.solver == solution.solver
        assert clone.optimal == solution.optimal

    def test_json_compatible_and_per_app_criteria(self):
        import json as json_mod

        from repro.io import solution_from_dict, solution_to_dict

        solution = self.solved()
        payload = solution_to_dict(solution)
        wired = json_mod.loads(json_mod.dumps(payload))
        clone = solution_from_dict(wired)
        # JSON stringifies the per-application dict keys; loading
        # restores them to ints.
        assert clone.values.periods == solution.values.periods
        assert clone.values.latencies == solution.values.latencies

    def test_telemetry_payload_is_embedded_not_consumed(self):
        from repro.io import solution_from_dict, solution_to_dict
        from repro.strategies import SolveTelemetry

        solution = self.solved()
        telemetry = SolveTelemetry(
            strategy="greedy", status="ok", wall_time=0.1, evaluations=7
        )
        payload = solution_to_dict(solution, telemetry=telemetry)
        assert payload["telemetry"]["evaluations"] == 7
        # A plain dict works too (the daemon passes decoded JSON).
        assert (
            solution_to_dict(solution, telemetry=telemetry.to_dict())[
                "telemetry"
            ]
            == payload["telemetry"]
        )
        clone = solution_from_dict(payload)
        assert clone.objective == solution.objective
        assert SolveTelemetry.from_dict(payload["telemetry"]) == telemetry

    def test_schema_check(self):
        from repro.io import solution_from_dict, solution_to_dict

        payload = solution_to_dict(self.solved())
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SerializationError):
            solution_from_dict(payload)

    def test_missing_values_rejected(self):
        from repro.io import solution_from_dict, solution_to_dict

        payload = solution_to_dict(self.solved())
        del payload["values"]
        with pytest.raises(SerializationError):
            solution_from_dict(payload)
