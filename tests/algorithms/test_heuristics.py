"""Tests for the polynomial heuristics: validity always, optimality often
(measured against the exact solvers on small instances)."""

import math

import pytest

from repro import (
    CommunicationModel,
    Criterion,
    MappingRule,
    PlatformClass,
    Thresholds,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import (
    anneal,
    greedy_interval_period,
    greedy_mode_downgrade,
    greedy_one_to_one_period,
    hill_climb,
    neighbors,
)
from repro.generators import small_random_problem

HET = PlatformClass.FULLY_HETEROGENEOUS


class TestGreedyInterval:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_within_factor(self, seed):
        problem = small_random_problem(
            seed, platform_class=HET, stage_range=(1, 3)
        )
        heur = greedy_interval_period(problem)
        problem.check_mapping(heur.mapping)
        assert not heur.optimal
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert heur.objective >= exact.objective - 1e-9
        # The split-bottleneck greedy stays within a small constant factor
        # on these instance families.
        assert heur.objective <= 3.0 * exact.objective + 1e-9

    def test_uses_extra_processors_when_helpful(self):
        from repro import Application, Platform, ProblemInstance

        apps = (Application.from_lists([10, 10, 10], [0.1, 0.1, 0.1]),)
        platform = Platform.fully_homogeneous(3, [1.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        heur = greedy_interval_period(problem)
        assert len(heur.mapping.enrolled_processors) == 3
        assert heur.objective == pytest.approx(10.0)


class TestGreedyOneToOne:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_reasonable(self, seed):
        problem = small_random_problem(
            seed + 10,
            platform_class=HET,
            rule=MappingRule.ONE_TO_ONE,
            stage_range=(1, 2),
        )
        heur = greedy_one_to_one_period(problem)
        problem.check_mapping(heur.mapping)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert heur.objective >= exact.objective - 1e-9


class TestNeighbors:
    def test_all_neighbors_valid(self):
        problem = small_random_problem(3, stage_range=(2, 3), n_modes=2)
        start = greedy_interval_period(problem).mapping
        count = 0
        for n in neighbors(problem, start):
            problem.check_mapping(n)
            count += 1
        assert count > 0

    def test_one_to_one_neighbors_stay_one_to_one(self):
        problem = small_random_problem(
            4, rule=MappingRule.ONE_TO_ONE, stage_range=(1, 2), n_modes=2
        )
        start = greedy_one_to_one_period(problem).mapping
        for n in neighbors(problem, start):
            assert n.is_one_to_one()
            problem.check_mapping(n)

    def test_neighbors_include_mode_changes(self):
        problem = small_random_problem(5, n_modes=3)
        start = greedy_interval_period(problem).mapping
        speeds = {
            tuple(sorted(a.speed for a in n.assignments))
            for n in neighbors(problem, start)
        }
        assert len(speeds) > 1


class TestHillClimb:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_start(self, seed):
        problem = small_random_problem(
            seed + 20, platform_class=HET, stage_range=(1, 3)
        )
        start = greedy_interval_period(problem)
        refined = hill_climb(problem, start.mapping, Criterion.PERIOD)
        assert refined.objective <= start.objective + 1e-9
        problem.check_mapping(refined.mapping)

    @pytest.mark.parametrize("seed", range(5))
    def test_often_reaches_optimum_on_small_instances(self, seed):
        problem = small_random_problem(
            seed + 30, platform_class=HET, stage_range=(1, 2)
        )
        start = greedy_interval_period(problem)
        refined = hill_climb(problem, start.mapping, Criterion.PERIOD)
        exact = exact_minimize(problem, Criterion.PERIOD)
        # Not guaranteed, but a 2x blowup would indicate a broken search.
        assert refined.objective <= 2.0 * exact.objective + 1e-9


class TestNeighborhoodEngines:
    """The batched and compiled engines are drop-ins for the scalar
    reference (the compiled one runs its real kernels interpreted here,
    via the pure-Python test hook, so Numba is not required)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_hill_climb_engines_byte_identical(self, seed):
        from ..kernel.test_neighborhood_property import forced_python_compiled

        problem = small_random_problem(
            seed + 70, platform_class=HET, n_modes=2, stage_range=(2, 4)
        )
        start = greedy_interval_period(problem)
        batched = hill_climb(problem, start.mapping, Criterion.PERIOD)
        with forced_python_compiled():
            others = {
                engine: hill_climb(
                    problem, start.mapping, Criterion.PERIOD, engine=engine
                )
                for engine in ("scalar", "compiled")
            }
        for other in others.values():
            assert batched.mapping == other.mapping
            assert batched.objective == other.objective
            assert batched.values == other.values
            assert batched.stats == other.stats

    @pytest.mark.parametrize("seed", range(3))
    def test_anneal_engines_byte_identical(self, seed):
        from ..kernel.test_neighborhood_property import forced_python_compiled

        problem = small_random_problem(
            seed + 80, platform_class=HET, n_modes=2
        )
        start = greedy_interval_period(problem)
        with forced_python_compiled():
            runs = {
                engine: anneal(
                    problem,
                    start.mapping,
                    Criterion.PERIOD,
                    seed=3,
                    n_iterations=120,
                    engine=engine,
                )
                for engine in ("batched", "scalar", "compiled")
            }
        for engine in ("scalar", "compiled"):
            assert runs["batched"].mapping == runs[engine].mapping
            assert runs["batched"].objective == runs[engine].objective
            assert runs["batched"].stats == runs[engine].stats

    def test_one_to_one_engines_byte_identical(self):
        from ..kernel.test_neighborhood_property import forced_python_compiled

        problem = small_random_problem(
            90,
            platform_class=HET,
            rule=MappingRule.ONE_TO_ONE,
            n_modes=2,
            stage_range=(1, 2),
        )
        start = greedy_one_to_one_period(problem)
        batched = hill_climb(problem, start.mapping, Criterion.PERIOD)
        with forced_python_compiled():
            for engine in ("scalar", "compiled"):
                other = hill_climb(
                    problem, start.mapping, Criterion.PERIOD, engine=engine
                )
                assert batched.mapping == other.mapping
                assert batched.stats == other.stats

    def test_unknown_engine_rejected(self):
        problem = small_random_problem(91)
        start = greedy_interval_period(problem)
        with pytest.raises(ValueError, match="unknown neighborhood engine"):
            hill_climb(
                problem, start.mapping, Criterion.PERIOD, engine="simd"
            )


class TestAnnealing:
    def test_deterministic_given_seed(self):
        problem = small_random_problem(41, n_modes=2)
        start = greedy_interval_period(problem)
        s1 = anneal(problem, start.mapping, Criterion.PERIOD, seed=7, n_iterations=100)
        s2 = anneal(problem, start.mapping, Criterion.PERIOD, seed=7, n_iterations=100)
        assert s1.objective == s2.objective

    def test_best_never_worse_than_start(self):
        problem = small_random_problem(42, n_modes=2)
        start = greedy_interval_period(problem)
        s = anneal(problem, start.mapping, Criterion.PERIOD, seed=1, n_iterations=150)
        assert s.objective <= start.objective + 1e-9
        problem.check_mapping(s.mapping)


class TestModeDowngrade:
    @pytest.mark.parametrize("seed", range(5))
    def test_saves_energy_and_keeps_thresholds(self, seed):
        problem = small_random_problem(seed + 50, n_modes=3)
        start = greedy_interval_period(problem)
        bound = start.values.period * 2.0
        sol = greedy_mode_downgrade(
            problem, start.mapping, Thresholds(period=bound)
        )
        assert sol.values.energy <= start.values.energy + 1e-9
        assert sol.values.period <= bound * (1 + 1e-9)
        problem.check_mapping(sol.mapping)

    @pytest.mark.parametrize("seed", range(4))
    def test_close_to_exact_on_small_instances(self, seed):
        problem = small_random_problem(
            seed + 60, n_modes=2, stage_range=(1, 2)
        )
        start = greedy_interval_period(problem)
        bound = start.values.period * 1.5
        heur = greedy_mode_downgrade(
            problem, start.mapping, Thresholds(period=bound)
        )
        exact = exact_minimize(
            problem, Criterion.ENERGY, Thresholds(period=bound)
        )
        assert heur.objective >= exact.objective - 1e-9
        assert heur.objective <= 2.5 * exact.objective + 1e-9

    def test_merge_move_can_release_processors(self):
        from repro import Application, Platform, ProblemInstance

        apps = (Application.from_lists([1, 1], [0.1, 0.1]),)
        platform = Platform.fully_homogeneous(2, [1.0, 4.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        # Start deliberately split at top speed.
        from repro import Assignment, Mapping

        start = Mapping.from_assignments(
            [
                Assignment(app=0, interval=(0, 0), proc=0, speed=4.0),
                Assignment(app=0, interval=(1, 1), proc=1, speed=4.0),
            ]
        )
        sol = greedy_mode_downgrade(problem, start, Thresholds(period=10.0))
        assert len(sol.mapping.enrolled_processors) == 1
        assert sol.values.energy == pytest.approx(1.0)
