"""Tests for the uni-modal tri-criteria solvers (Theorems 23-24)."""

import math

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    EnergyModel,
    InfeasibleProblemError,
    MappingRule,
    Platform,
    ProblemInstance,
    SolverError,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_tri,
    minimize_latency_interval,
    minimize_latency_tri,
    minimize_period_interval,
    minimize_period_tri,
    tricriteria_one_to_one,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.tricriteria import processor_budget_from_energy
from repro.generators import random_applications, rng_from

EM = EnergyModel(alpha=2.0)


def uni_modal_problem(seed, n_apps=2, speed=2.0, e_stat=0.0):
    rng = rng_from(seed)
    apps = random_applications(rng, n_apps, stage_range=(2, 3))
    platform = Platform.fully_homogeneous(
        5, speeds=[speed], bandwidth=1.5, static_energy=e_stat
    )
    return ProblemInstance(
        apps=apps, platform=platform, energy_model=EM
    )


class TestProcessorBudget:
    def test_budget_floor(self):
        problem = uni_modal_problem(0, speed=2.0)
        # e0 = 4 per processor; budget 13 -> 3 processors.
        assert processor_budget_from_energy(problem, 13.0) == 3
        assert processor_budget_from_energy(problem, 4.0) == 1

    def test_budget_clamped_to_p(self):
        problem = uni_modal_problem(0, speed=1.0)
        assert processor_budget_from_energy(problem, 1e9) == 5

    def test_no_budget_means_all(self):
        problem = uni_modal_problem(0)
        assert processor_budget_from_energy(problem, None) == 5

    def test_static_energy_counts(self):
        problem = uni_modal_problem(0, speed=2.0, e_stat=1.0)
        # e0 = 5 per processor.
        assert processor_budget_from_energy(problem, 12.0) == 2


class TestMinimizePeriodTri:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact(self, seed):
        problem = uni_modal_problem(seed)
        lat = minimize_latency_interval(problem).objective
        e0 = EM.dynamic(2.0)
        thresholds = Thresholds(latency=lat * 1.5, energy=4 * e0)
        fast = minimize_period_tri(problem, thresholds)
        exact = exact_minimize(problem, Criterion.PERIOD, thresholds)
        assert fast.objective == pytest.approx(exact.objective)
        assert fast.values.energy <= 4 * e0 * (1 + 1e-9)
        assert fast.values.latency <= lat * 1.5 * (1 + 1e-9)

    def test_energy_budget_restricts_processors(self):
        problem = uni_modal_problem(2)
        e0 = EM.dynamic(2.0)
        loose = minimize_period_tri(
            problem, Thresholds(latency=1e9, energy=5 * e0)
        )
        tight = minimize_period_tri(
            problem, Thresholds(latency=1e9, energy=2 * e0)
        )
        assert len(tight.mapping.enrolled_processors) <= 2
        assert tight.objective >= loose.objective - 1e-12

    def test_budget_below_app_count_infeasible(self):
        problem = uni_modal_problem(3)
        with pytest.raises(InfeasibleProblemError):
            minimize_period_tri(
                problem, Thresholds(latency=1e9, energy=EM.dynamic(2.0))
            )


class TestMinimizeLatencyTri:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact(self, seed):
        problem = uni_modal_problem(seed + 10)
        base = minimize_period_interval(problem).objective
        e0 = EM.dynamic(2.0)
        thresholds = Thresholds(period=base * 1.5, energy=4 * e0)
        fast = minimize_latency_tri(problem, thresholds)
        exact = exact_minimize(problem, Criterion.LATENCY, thresholds)
        assert fast.objective == pytest.approx(exact.objective)


class TestMinimizeEnergyTri:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact(self, seed):
        problem = uni_modal_problem(seed + 20)
        base_t = minimize_period_interval(problem).objective
        base_l = minimize_latency_interval(problem).objective
        thresholds = Thresholds(period=base_t * 1.4, latency=base_l * 1.4)
        fast = minimize_energy_tri(problem, thresholds)
        exact = exact_minimize(problem, Criterion.ENERGY, thresholds)
        assert fast.objective == pytest.approx(exact.objective)

    def test_energy_counts_enrolled_only(self):
        problem = uni_modal_problem(4)
        thresholds = Thresholds(period=1e9, latency=1e9)
        fast = minimize_energy_tri(problem, thresholds)
        # Loose bounds: one processor per application suffices.
        assert len(fast.mapping.enrolled_processors) == problem.n_apps
        assert fast.objective == pytest.approx(
            problem.n_apps * EM.dynamic(2.0)
        )

    def test_jointly_unreachable_bounds(self):
        problem = uni_modal_problem(5)
        with pytest.raises(InfeasibleProblemError):
            minimize_energy_tri(
                problem, Thresholds(period=1e-9, latency=1e-9)
            )


class TestTricriteriaOneToOne:
    def test_canonical_when_feasible(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        platform = Platform.fully_homogeneous(2, speeds=[2.0])
        problem = ProblemInstance(
            apps=apps,
            platform=platform,
            rule=MappingRule.ONE_TO_ONE,
            energy_model=EM,
        )
        solution = tricriteria_one_to_one(
            problem, Thresholds(period=10, latency=10, energy=10)
        )
        assert solution.objective == pytest.approx(8.0)  # 2 procs x 4

    def test_infeasible(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        platform = Platform.fully_homogeneous(2, speeds=[2.0])
        problem = ProblemInstance(
            apps=apps,
            platform=platform,
            rule=MappingRule.ONE_TO_ONE,
            energy_model=EM,
        )
        with pytest.raises(InfeasibleProblemError):
            tricriteria_one_to_one(
                problem, Thresholds(period=10, latency=10, energy=7.9)
            )


class TestDomainGuards:
    def test_multi_modal_rejected(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.fully_homogeneous(2, speeds=[1.0, 2.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        with pytest.raises(SolverError, match="NP-hard"):
            minimize_period_tri(problem, Thresholds(latency=10, energy=10))

    def test_heterogeneous_rejected(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.comm_homogeneous([[1.0], [2.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        with pytest.raises(SolverError):
            minimize_latency_tri(problem, Thresholds(period=10, energy=10))
