"""Tests for Theorem 3: multi-application interval period minimization on
fully homogeneous platforms, against the exact solvers."""

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    MappingRule,
    Platform,
    ProblemInstance,
    SolverError,
)
from repro.algorithms import minimize_period_interval
from repro.algorithms.exact import brute_force_minimize, exact_minimize
from repro.generators import random_applications, rng_from

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]


def fully_hom_problem(seed, model=CommunicationModel.OVERLAP, n_apps=2):
    rng = rng_from(seed)
    apps = random_applications(rng, n_apps, stage_range=(1, 4))
    total = sum(a.n_stages for a in apps)
    platform = Platform.fully_homogeneous(
        min(total + 1, 6),
        speeds=[float(rng.uniform(1, 4))],
        bandwidth=float(rng.uniform(1, 3)),
    )
    return ProblemInstance(apps=apps, platform=platform, model=model)


class TestTheorem3:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact(self, seed, model):
        problem = fully_hom_problem(seed, model=model)
        fast = minimize_period_interval(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)
        problem.check_mapping(fast.mapping)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        problem = fully_hom_problem(seed + 50)
        fast = minimize_period_interval(problem)
        brute = brute_force_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(brute.objective)

    def test_three_apps(self):
        problem = fully_hom_problem(7, n_apps=3)
        fast = minimize_period_interval(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)

    def test_weighted(self):
        rng = rng_from(13)
        apps = random_applications(
            rng, 2, stage_range=(2, 3), weights=[1.0, 5.0]
        )
        platform = Platform.fully_homogeneous(5, speeds=[2.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        fast = minimize_period_interval(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)

    def test_heavier_weight_gets_processors(self):
        # Two identical heavy apps, but app 1 carries weight 10: the greedy
        # allocation must favour it.
        apps = (
            Application.homogeneous(4, work=4.0, weight=1.0),
            Application.homogeneous(4, work=4.0, weight=10.0),
        )
        platform = Platform.fully_homogeneous(5, speeds=[1.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        solution = minimize_period_interval(problem)
        by_app = {
            a: len(solution.mapping.for_app(a))
            for a in solution.mapping.applications
        }
        assert by_app[1] > by_app[0]

    def test_rejects_non_fully_homogeneous(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.comm_homogeneous([[1.0], [2.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        with pytest.raises(SolverError):
            minimize_period_interval(problem)

    def test_runs_at_max_speed(self):
        # Without an energy criterion all processors run flat out.
        apps = (Application.from_lists([4, 4], [1, 1]),)
        platform = Platform.fully_homogeneous(3, speeds=[1.0, 3.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        solution = minimize_period_interval(problem)
        assert all(x.speed == 3.0 for x in solution.mapping.assignments)

    def test_single_app_single_proc(self):
        apps = (Application.from_lists([2], [1], input_data_size=1),)
        platform = Platform.fully_homogeneous(1, speeds=[2.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        solution = minimize_period_interval(problem)
        assert solution.objective == pytest.approx(max(1.0, 1.0, 1.0))
