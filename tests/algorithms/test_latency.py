"""Tests for latency minimization (Theorems 8 and 12) against the exact
solvers."""

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    MappingRule,
    Platform,
    ProblemInstance,
    SolverError,
)
from repro.algorithms import (
    minimize_latency_interval,
    minimize_latency_one_to_one_fully_hom,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.latency import latency_candidates
from repro.generators import random_applications, rng_from

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]


class TestTheorem8OneToOneFullyHom:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact(self, seed):
        rng = rng_from(seed)
        apps = random_applications(rng, 2, stage_range=(1, 3))
        total = sum(a.n_stages for a in apps)
        platform = Platform.fully_homogeneous(total + 1, speeds=[2.0])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        fast = minimize_latency_one_to_one_fully_hom(problem)
        exact = exact_minimize(problem, Criterion.LATENCY)
        assert fast.objective == pytest.approx(exact.objective)

    def test_rejects_heterogeneous_processors(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.comm_homogeneous([[1.0], [2.0]])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        with pytest.raises(SolverError):
            minimize_latency_one_to_one_fully_hom(problem)


class TestTheorem12IntervalCommHom:
    def make_problem(self, seed, model=CommunicationModel.OVERLAP, weights=None):
        rng = rng_from(seed)
        apps = random_applications(
            rng, 2, stage_range=(1, 3), weights=weights
        )
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 5))] for _ in range(4)],
            bandwidth=float(rng.uniform(1, 3)),
        )
        return ProblemInstance(apps=apps, platform=platform, model=model)

    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact(self, seed, model):
        problem = self.make_problem(seed, model=model)
        fast = minimize_latency_interval(problem)
        exact = exact_minimize(problem, Criterion.LATENCY)
        assert fast.objective == pytest.approx(exact.objective)
        problem.check_mapping(fast.mapping)

    def test_whole_app_per_processor(self):
        # Theorem 12's structure: one interval per application.
        problem = self.make_problem(3)
        solution = minimize_latency_interval(problem)
        for a in range(problem.n_apps):
            parts = solution.mapping.for_app(a)
            assert len(parts) == 1
            assert parts[0].interval == (0, problem.apps[a].n_stages - 1)

    def test_weighted(self):
        problem = self.make_problem(9, weights=[4.0, 1.0])
        fast = minimize_latency_interval(problem)
        exact = exact_minimize(problem, Criterion.LATENCY)
        assert fast.objective == pytest.approx(exact.objective)

    def test_optimum_is_a_candidate(self):
        problem = self.make_problem(5)
        solution = minimize_latency_interval(problem)
        cands = latency_candidates(problem.apps, problem.platform)
        assert any(abs(c - solution.objective) < 1e-9 for c in cands)

    def test_single_app_takes_fastest_processor(self):
        apps = (Application.from_lists([6, 6], [1, 1], input_data_size=1),)
        platform = Platform.comm_homogeneous([[1.0], [4.0], [2.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        solution = minimize_latency_interval(problem)
        assert solution.mapping.assignments[0].proc == 1  # speed-4 processor

    def test_splitting_never_beats_whole_on_comm_hom(self):
        # The Theorem 12 argument: verify on a concrete case that an exact
        # search over all interval mappings agrees with the one-proc rule.
        apps = (Application.from_lists([3, 5, 2], [2, 2, 2], input_data_size=2),)
        platform = Platform.comm_homogeneous([[2.0], [3.0], [1.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        fast = minimize_latency_interval(problem)
        exact = exact_minimize(problem, Criterion.LATENCY)
        assert fast.objective == pytest.approx(exact.objective)
