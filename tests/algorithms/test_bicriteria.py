"""Tests for the bi-criteria period/latency machinery (Theorems 14-16)."""

import math

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    InfeasibleProblemError,
    MappingRule,
    Platform,
    ProblemInstance,
    SolverError,
    Thresholds,
)
from repro.algorithms import (
    bicriteria_one_to_one_fully_hom,
    minimize_latency_given_period,
    minimize_period_given_latency,
    single_app_latency_table,
    single_app_min_period_given_latency,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.interval_period import interval_cycle
from repro.generators import random_application, random_applications, rng_from

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP
BOTH_MODELS = [OVERLAP, NO_OVERLAP]


def brute_force_min_latency(app, q, speed, bw, model, period_bound):
    """Reference: min latency over partitions into <= q intervals whose
    every cycle meets the period bound."""
    best = math.inf
    for partition in app.iter_interval_partitions():
        if len(partition) > q:
            continue
        if any(
            interval_cycle(app, iv, speed, bw, model)
            > period_bound * (1 + 1e-9)
            for iv in partition
        ):
            continue
        latency = app.input_data_size / bw
        for lo, hi in partition:
            latency += app.work_sum(lo, hi) / speed
            latency += app.output_size(hi) / bw
        best = min(best, latency)
    return best


class TestSingleAppLatencyDP:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed, model):
        rng = rng_from(seed)
        app = random_application(rng, int(rng.integers(1, 7)))
        speed = float(rng.uniform(1, 4))
        bw = float(rng.uniform(1, 3))
        # Pick a period bound between the 1-proc and n-proc optima so the
        # constraint actually bites.
        from repro.algorithms import single_app_period_table

        table_p = single_app_period_table(app, app.n_stages, speed, bw, model)
        bound = 0.5 * (table_p.period(1) + table_p.period(app.n_stages))
        table = single_app_latency_table(
            app, app.n_stages, speed, bw, model, bound
        )
        for q in range(1, app.n_stages + 1):
            expected = brute_force_min_latency(app, q, speed, bw, model, bound)
            assert table.latency(q) == pytest.approx(expected), (seed, q)

    def test_latency_non_increasing_in_q(self):
        rng = rng_from(2)
        app = random_application(rng, 6)
        table = single_app_latency_table(app, 6, 2.0, 1.0, OVERLAP, 5.0)
        values = [table.latency(q) for q in range(1, 7)]
        finite = [v for v in values if math.isfinite(v)]
        assert all(a >= b for a, b in zip(finite, finite[1:]))

    def test_infeasible_bound(self):
        app = Application.from_lists([10], [0])
        table = single_app_latency_table(app, 1, 1.0, 1.0, OVERLAP, 0.5)
        assert table.latency(1) == math.inf
        with pytest.raises(InfeasibleProblemError):
            table.reconstruct(1)

    def test_reconstruction_meets_period_bound(self):
        rng = rng_from(8)
        app = random_application(rng, 5)
        speed, bw, bound = 2.0, 1.0, 4.0
        table = single_app_latency_table(app, 5, speed, bw, OVERLAP, bound)
        for q in range(1, 6):
            if not math.isfinite(table.latency(q)):
                continue
            for iv in table.reconstruct(q):
                assert interval_cycle(app, iv, speed, bw, OVERLAP) <= bound * (
                    1 + 1e-9
                )


class TestSingleAppPeriodGivenLatency:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(5))
    def test_dual_consistency(self, seed, model):
        # min-period-given-latency followed by min-latency-given-that-period
        # must round-trip.
        rng = rng_from(seed + 20)
        app = random_application(rng, int(rng.integers(2, 6)))
        speed, bw = 2.0, 1.5
        q = app.n_stages
        loose_latency = app.input_data_size / bw + app.total_work / speed + sum(
            app.output_sizes
        ) / bw
        period, witness = single_app_min_period_given_latency(
            app, q, speed, bw, model, loose_latency * 1.5
        )
        assert math.isfinite(period)
        assert witness is not None
        table = single_app_latency_table(app, q, speed, bw, model, period)
        assert table.latency(q) <= loose_latency * 1.5 * (1 + 1e-9)

    def test_tight_latency_forces_whole_mapping(self):
        # Latency bound = single-processor latency: only m=1 fits, so the
        # optimal period is the single-interval cycle-time.
        app = Application.from_lists([4, 4], [3, 1], input_data_size=1)
        speed, bw = 2.0, 1.0
        single_latency = 1.0 + 8.0 / 2.0 + 1.0
        period, _ = single_app_min_period_given_latency(
            app, 2, speed, bw, OVERLAP, single_latency
        )
        assert period == pytest.approx(max(1.0, 4.0, 1.0))

    def test_infeasible_latency(self):
        app = Application.from_lists([10], [0])
        period, witness = single_app_min_period_given_latency(
            app, 1, 1.0, 1.0, OVERLAP, 1.0
        )
        assert period == math.inf and witness is None


class TestMultiAppTheorem16:
    def make_problem(self, seed, model=OVERLAP, n_apps=2):
        rng = rng_from(seed)
        apps = random_applications(rng, n_apps, stage_range=(2, 3))
        platform = Platform.fully_homogeneous(
            5, speeds=[2.0], bandwidth=1.5
        )
        return ProblemInstance(apps=apps, platform=platform, model=model)

    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(6))
    def test_latency_given_period_matches_exact(self, seed, model):
        problem = self.make_problem(seed, model=model)
        # A period bound midway between loose and tight.
        from repro.algorithms import minimize_period_interval

        best_t = minimize_period_interval(problem).objective
        bound = best_t * 1.6
        thresholds = Thresholds(period=bound)
        fast = minimize_latency_given_period(problem, thresholds)
        exact = exact_minimize(problem, Criterion.LATENCY, thresholds)
        assert fast.objective == pytest.approx(exact.objective)
        assert fast.values.period <= bound * (1 + 1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_period_given_latency_matches_exact(self, seed):
        problem = self.make_problem(seed + 40)
        from repro.algorithms import minimize_latency_interval

        # Comm-hom solver applies to fully-hom platforms too: use it to get
        # a reference latency and relax it.
        best_l = minimize_latency_interval(problem).objective
        bound = best_l * 1.3
        thresholds = Thresholds(latency=bound)
        fast = minimize_period_given_latency(problem, thresholds)
        exact = exact_minimize(problem, Criterion.PERIOD, thresholds)
        assert fast.objective == pytest.approx(exact.objective)
        assert fast.values.latency <= bound * (1 + 1e-9)

    def test_infeasible_period_bound(self):
        problem = self.make_problem(1)
        with pytest.raises(InfeasibleProblemError):
            minimize_latency_given_period(problem, Thresholds(period=1e-6))

    def test_per_app_thresholds(self):
        problem = self.make_problem(3)
        from repro.algorithms import minimize_period_interval

        base = minimize_period_interval(problem)
        per_app = tuple(
            base.values.periods[a] * 1.5 for a in range(problem.n_apps)
        )
        thresholds = Thresholds(per_app_period=per_app)
        fast = minimize_latency_given_period(problem, thresholds)
        for a in range(problem.n_apps):
            assert fast.values.periods[a] <= per_app[a] * (1 + 1e-9)

    def test_rejects_non_fully_homogeneous(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.comm_homogeneous([[1.0], [2.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        with pytest.raises(SolverError):
            minimize_latency_given_period(problem, Thresholds(period=10))


class TestTheorem14OneToOne:
    def test_canonical_when_feasible(self):
        apps = (Application.from_lists([2, 2], [1, 1], input_data_size=1),)
        platform = Platform.fully_homogeneous(3, speeds=[2.0])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        solution = bicriteria_one_to_one_fully_hom(
            problem, Thresholds(period=10.0, latency=10.0)
        )
        exact = exact_minimize(
            problem, Criterion.LATENCY, Thresholds(period=10.0)
        )
        assert solution.objective == pytest.approx(exact.objective)

    def test_infeasible_thresholds(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        platform = Platform.fully_homogeneous(2, speeds=[1.0])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        with pytest.raises(InfeasibleProblemError):
            bicriteria_one_to_one_fully_hom(
                problem, Thresholds(period=0.01)
            )
