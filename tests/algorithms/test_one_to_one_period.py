"""Tests for Theorem 1: one-to-one period minimization (binary search +
greedy assignment), validated against the exact solvers."""

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    InfeasibleProblemError,
    MappingRule,
    Platform,
    PlatformClass,
    ProblemInstance,
    SolverError,
)
from repro.algorithms import minimize_period_one_to_one
from repro.algorithms.exact import exact_minimize
from repro.algorithms.one_to_one_period import (
    greedy_assignment,
    period_candidates,
)
from repro.generators import random_applications, rng_from

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]


def comm_hom_problem(seed, model=CommunicationModel.OVERLAP, n_apps=2):
    rng = rng_from(seed)
    apps = random_applications(rng, n_apps, stage_range=(1, 3))
    total = sum(a.n_stages for a in apps)
    speed_sets = [[float(rng.uniform(1, 5))] for _ in range(total + 2)]
    platform = Platform.comm_homogeneous(
        speed_sets, bandwidth=float(rng.uniform(1, 3))
    )
    return ProblemInstance(
        apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE, model=model
    )


class TestGreedyAssignment:
    def test_returns_valid_mapping(self):
        problem = comm_hom_problem(0)
        mapping = greedy_assignment(
            problem.apps, problem.platform, period=1e9
        )
        assert mapping is not None
        mapping.validate(problem.apps, problem.platform, MappingRule.ONE_TO_ONE)

    def test_respects_period(self):
        problem = comm_hom_problem(1)
        target = 5.0
        mapping = greedy_assignment(problem.apps, problem.platform, target)
        if mapping is not None:
            assert problem.evaluate(mapping).period <= target * (1 + 1e-9)

    def test_fails_below_optimum(self):
        problem = comm_hom_problem(2)
        optimum = minimize_period_one_to_one(problem).objective
        assert (
            greedy_assignment(
                problem.apps, problem.platform, optimum * 0.999
            )
            is None
        )

    def test_infeasible_when_too_few_processors(self):
        apps = (Application.from_lists([1, 1, 1], [0, 0, 0]),)
        platform = Platform.comm_homogeneous([[1.0], [1.0]])
        assert greedy_assignment(apps, platform, 1e9) is None


class TestCandidateSet:
    def test_size_bound(self):
        problem = comm_hom_problem(3)
        cands = period_candidates(problem.apps, problem.platform)
        n_max = max(a.n_stages for a in problem.apps)
        assert len(cands) <= n_max * problem.n_apps * problem.platform.n_processors

    def test_optimum_is_a_candidate(self):
        for seed in range(6):
            problem = comm_hom_problem(seed)
            solution = minimize_period_one_to_one(problem)
            cands = period_candidates(
                problem.apps, problem.platform, problem.model
            )
            assert any(
                abs(c - solution.objective) < 1e-9 for c in cands
            ), "Theorem 1: the optimal period must be a candidate value"


class TestOptimality:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact_solver(self, seed, model):
        problem = comm_hom_problem(seed, model=model)
        fast = minimize_period_one_to_one(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)
        problem.check_mapping(fast.mapping)

    def test_weighted_objective(self):
        rng = rng_from(42)
        apps = random_applications(
            rng, 2, stage_range=(1, 2), weights=[1.0, 7.0]
        )
        total = sum(a.n_stages for a in apps)
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 4))] for _ in range(total + 1)]
        )
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        fast = minimize_period_one_to_one(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)

    def test_per_app_bandwidths(self):
        # The Theorem 1 refinement: per-application link capacities.
        rng = rng_from(11)
        apps = random_applications(rng, 2, stage_range=(2, 2))
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 4))] for _ in range(5)],
            app_bandwidths={0: 0.5, 1: 3.0},
        )
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        fast = minimize_period_one_to_one(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)

    def test_solution_metadata(self):
        problem = comm_hom_problem(5)
        s = minimize_period_one_to_one(problem)
        assert s.optimal
        assert s.solver == "theorem1-binary-search-greedy"
        assert s.stats["n_feasibility_tests"] >= 1


class TestDomainGuards:
    def test_rejects_heterogeneous_links(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.fully_heterogeneous(
            [[1.0], [2.0]], {(0, 1): 0.5}
        )
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        with pytest.raises(SolverError):
            minimize_period_one_to_one(problem)

    def test_works_on_fully_homogeneous(self):
        apps = (Application.from_lists([2, 3], [1, 1], input_data_size=1),)
        platform = Platform.fully_homogeneous(3, [2.0])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        fast = minimize_period_one_to_one(problem)
        exact = exact_minimize(problem, Criterion.PERIOD)
        assert fast.objective == pytest.approx(exact.objective)
