"""Tests for the single-application interval period DP (the Theorem 3
oracle) against brute-force enumeration of partitions."""

import itertools
import math

import pytest

from repro import Application, CommunicationModel
from repro.algorithms.interval_period import (
    interval_cycle,
    single_app_period_table,
)
from repro.generators import random_application, rng_from

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]


def brute_force_best_period(app, q, speed, bandwidth, model):
    """Minimum period over all partitions into at most q intervals."""
    best = math.inf
    for partition in app.iter_interval_partitions():
        if len(partition) > q:
            continue
        period = max(
            interval_cycle(app, iv, speed, bandwidth, model)
            for iv in partition
        )
        best = min(best, period)
    return best


class TestSingleAppPeriodTable:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed, model):
        rng = rng_from(seed)
        app = random_application(rng, int(rng.integers(1, 7)))
        speed = float(rng.uniform(1, 4))
        bw = float(rng.uniform(1, 3))
        table = single_app_period_table(app, app.n_stages, speed, bw, model)
        for q in range(1, app.n_stages + 1):
            expected = brute_force_best_period(app, q, speed, bw, model)
            assert table.period(q) == pytest.approx(expected), (q, seed)

    def test_non_increasing_in_q(self):
        rng = rng_from(3)
        app = random_application(rng, 6)
        table = single_app_period_table(app, 6, 2.0, 1.0, CommunicationModel.OVERLAP)
        periods = [table.period(q) for q in range(1, 7)]
        assert all(a >= b for a, b in zip(periods, periods[1:]))

    def test_more_procs_than_stages_clamped(self):
        app = Application.from_lists([1, 2], [1, 1])
        table = single_app_period_table(
            app, 10, 1.0, 1.0, CommunicationModel.OVERLAP
        )
        assert table.max_procs == 2
        assert table.period(10) == table.period(2)

    @pytest.mark.parametrize("model", BOTH_MODELS)
    def test_reconstruction_achieves_tabulated_period(self, model):
        for seed in range(5):
            rng = rng_from(100 + seed)
            app = random_application(rng, int(rng.integers(2, 7)))
            speed, bw = 2.0, 1.5
            table = single_app_period_table(
                app, app.n_stages, speed, bw, model
            )
            for q in range(1, table.max_procs + 1):
                intervals = table.reconstruct(q)
                assert len(intervals) <= q
                # Consecutive and covering.
                assert intervals[0][0] == 0
                assert intervals[-1][1] == app.n_stages - 1
                for (l1, h1), (l2, h2) in zip(intervals, intervals[1:]):
                    assert l2 == h1 + 1
                achieved = max(
                    interval_cycle(app, iv, speed, bw, model)
                    for iv in intervals
                )
                assert achieved == pytest.approx(table.period(q))

    def test_single_stage(self):
        app = Application.from_lists([5], [2], input_data_size=3)
        table = single_app_period_table(
            app, 1, 2.0, 1.0, CommunicationModel.OVERLAP
        )
        assert table.period(1) == pytest.approx(max(3.0, 2.5, 2.0))
        assert table.reconstruct(1) == [(0, 0)]

    def test_zero_proc_infeasible(self):
        app = Application.from_lists([5], [2])
        table = single_app_period_table(
            app, 1, 1.0, 1.0, CommunicationModel.OVERLAP
        )
        assert table.periods[0] == math.inf
        with pytest.raises(ValueError):
            table.reconstruct(0)

    def test_splitting_helps_compute_bound_cases(self):
        # With heavy computation and light data, more processors strictly
        # improve the period until the communication floor is hit.
        app = Application.from_lists([10, 10], [0.1, 0.1])
        table = single_app_period_table(
            app, 2, 1.0, 1.0, CommunicationModel.OVERLAP
        )
        assert table.period(2) < table.period(1)
        assert table.period(2) == pytest.approx(10.0)
