"""Cross-validation of the two exact solvers (brute force vs
branch-and-bound) -- two independent implementations that must agree."""

import math

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    InfeasibleProblemError,
    MappingRule,
    Platform,
    PlatformClass,
    ProblemInstance,
    SolverError,
    Thresholds,
)
from repro.algorithms.exact import (
    brute_force_minimize,
    exact_minimize,
    iter_mappings,
)
from repro.generators import small_random_problem

ALL_CELLS = [
    PlatformClass.FULLY_HOMOGENEOUS,
    PlatformClass.COMM_HOMOGENEOUS,
    PlatformClass.FULLY_HETEROGENEOUS,
]
BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]
BOTH_RULES = [MappingRule.ONE_TO_ONE, MappingRule.INTERVAL]


class TestIterMappings:
    def test_counts_single_app(self):
        apps = (Application.from_lists([1, 1], [0, 0]),)
        platform = Platform.fully_homogeneous(3, [1.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        mappings = list(iter_mappings(problem, max_speed_only=True))
        # partitions: {(0,1)}, {(0,0),(1,1)} -> P(3,1) + P(3,2) = 3 + 6 = 9.
        assert len(mappings) == 9

    def test_counts_one_to_one(self):
        apps = (Application.from_lists([1, 1], [0, 0]),)
        platform = Platform.fully_homogeneous(3, [1.0])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
        )
        assert len(list(iter_mappings(problem, max_speed_only=True))) == 6

    def test_speed_enumeration(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.fully_homogeneous(2, [1.0, 2.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        with_speeds = list(iter_mappings(problem, max_speed_only=False))
        only_max = list(iter_mappings(problem, max_speed_only=True))
        assert len(with_speeds) == 2 * len(only_max)

    def test_all_mappings_valid(self):
        problem = small_random_problem(5, n_apps=2, stage_range=(1, 2))
        for m in iter_mappings(problem, max_speed_only=True):
            problem.check_mapping(m)


class TestAgreement:
    @pytest.mark.parametrize("cell", ALL_CELLS)
    @pytest.mark.parametrize("rule", BOTH_RULES)
    @pytest.mark.parametrize("criterion", [Criterion.PERIOD, Criterion.LATENCY])
    def test_period_latency_agree(self, cell, rule, criterion):
        for seed in range(3):
            problem = small_random_problem(
                seed, platform_class=cell, rule=rule, stage_range=(1, 3)
            )
            bf = brute_force_minimize(problem, criterion)
            bb = exact_minimize(problem, criterion)
            assert bf.objective == pytest.approx(bb.objective), seed

    @pytest.mark.parametrize("model", BOTH_MODELS)
    def test_models_agree(self, model):
        problem = small_random_problem(
            11, model=model, stage_range=(1, 3)
        )
        bf = brute_force_minimize(problem, Criterion.PERIOD)
        bb = exact_minimize(problem, Criterion.PERIOD)
        assert bf.objective == pytest.approx(bb.objective)

    def test_energy_with_modes_agree(self):
        for seed in range(3):
            problem = small_random_problem(
                seed + 60,
                n_modes=2,
                stage_range=(1, 2),
            )
            base = brute_force_minimize(problem, Criterion.PERIOD)
            thresholds = Thresholds(period=base.objective * 1.5)
            bf = brute_force_minimize(problem, Criterion.ENERGY, thresholds)
            bb = exact_minimize(problem, Criterion.ENERGY, thresholds)
            assert bf.objective == pytest.approx(bb.objective), seed

    def test_thresholded_period_agree(self):
        problem = small_random_problem(21, stage_range=(2, 3))
        loose_latency = brute_force_minimize(
            problem, Criterion.LATENCY
        ).objective
        thresholds = Thresholds(latency=loose_latency * 1.2)
        bf = brute_force_minimize(problem, Criterion.PERIOD, thresholds)
        bb = exact_minimize(problem, Criterion.PERIOD, thresholds)
        assert bf.objective == pytest.approx(bb.objective)


class TestBranchAndBoundBehaviour:
    def test_infeasible_thresholds(self):
        problem = small_random_problem(31)
        with pytest.raises(InfeasibleProblemError):
            exact_minimize(
                problem, Criterion.PERIOD, Thresholds(latency=1e-9)
            )

    def test_node_limit(self):
        problem = small_random_problem(32, n_apps=2, stage_range=(3, 4))
        with pytest.raises(SolverError, match="node limit"):
            exact_minimize(problem, Criterion.PERIOD, node_limit=3)

    def test_solution_is_valid_and_consistent(self):
        problem = small_random_problem(33)
        s = exact_minimize(problem, Criterion.PERIOD)
        problem.check_mapping(s.mapping)
        assert s.objective == pytest.approx(s.values.period)
        assert s.stats["nodes"] >= 1

    def test_symmetry_breaking_reduces_nodes(self):
        problem = small_random_problem(
            34, platform_class=PlatformClass.FULLY_HOMOGENEOUS
        )
        s = exact_minimize(problem, Criterion.PERIOD)
        # With 6+ identical processors, full enumeration would explode;
        # equivalence classes keep it tiny.
        assert s.stats["nodes"] < 20000

    def test_energy_criterion_defaults_to_mode_enumeration(self):
        apps = (Application.from_lists([4], [0]),)
        platform = Platform.fully_homogeneous(1, [1.0, 2.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        s = exact_minimize(problem, Criterion.ENERGY)
        # Cheapest mode wins when no period bound applies.
        assert s.objective == pytest.approx(1.0)

    def test_fix_max_speed_override(self):
        apps = (Application.from_lists([4], [0]),)
        platform = Platform.fully_homogeneous(1, [1.0, 2.0])
        problem = ProblemInstance(apps=apps, platform=platform)
        s = exact_minimize(
            problem, Criterion.ENERGY, fix_max_speed=True
        )
        assert s.objective == pytest.approx(4.0)
