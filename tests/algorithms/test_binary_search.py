"""Unit tests for the candidate-set binary-search driver."""

import math

import pytest

from repro.algorithms.binary_search import (
    linear_smallest_feasible,
    smallest_feasible,
)


def monotone_test(threshold):
    """Feasible iff candidate >= threshold; witness is the candidate."""

    def test(x):
        return x if x >= threshold else None

    return test


class TestSmallestFeasible:
    def test_finds_smallest(self):
        r = smallest_feasible([5.0, 1.0, 3.0, 2.0], monotone_test(2.5))
        assert r.value == 3.0
        assert r.witness == 3.0
        assert r.feasible

    def test_all_feasible(self):
        r = smallest_feasible([4.0, 2.0], monotone_test(0.0))
        assert r.value == 2.0

    def test_none_feasible(self):
        r = smallest_feasible([1.0, 2.0], monotone_test(10.0))
        assert not r.feasible
        assert r.value == math.inf
        assert r.witness is None

    def test_empty_candidates(self):
        r = smallest_feasible([], monotone_test(0.0))
        assert not r.feasible

    def test_non_finite_candidates_dropped(self):
        r = smallest_feasible([math.inf, 2.0, math.nan], monotone_test(1.0))
        assert r.value == 2.0

    def test_duplicates_deduplicated(self):
        probes = []

        def test(x):
            probes.append(x)
            return x if x >= 2.0 else None

        r = smallest_feasible([2.0] * 50 + [1.0] * 50, test)
        assert r.value == 2.0
        assert len(probes) <= 2  # log2(2 distinct values)

    def test_logarithmic_probes(self):
        candidates = list(range(1, 1025))
        r = smallest_feasible(candidates, monotone_test(700))
        assert r.value == 700
        assert r.n_tests <= 11  # ceil(log2(1024)) + 1

    def test_agrees_with_linear_scan(self):
        import numpy as np

        rng = np.random.default_rng(7)
        for _ in range(25):
            candidates = sorted(rng.uniform(0, 10, size=13))
            threshold = float(rng.uniform(0, 12))
            b = smallest_feasible(candidates, monotone_test(threshold))
            l = linear_smallest_feasible(candidates, monotone_test(threshold))
            assert b.value == l.value
