"""Tests for the NP-hardness reductions: the proofs of Theorems 5, 9, 26
and 27 executed as code, both directions, on solvable and unsolvable
source instances."""

import math

import numpy as np
import pytest

from repro import Criterion, InfeasibleProblemError, Thresholds
from repro.algorithms.exact import exact_minimize
from repro.algorithms.reductions import (
    LatencyOneToOneReduction,
    PeriodIntervalReduction,
    ThreePartitionInstance,
    TriCriteriaIntervalReduction,
    TriCriteriaOneToOneReduction,
    TwoPartitionInstance,
    random_three_partition_yes_instance,
    random_two_partition_instance,
)


class TestTwoPartition:
    def test_yes_instance(self):
        inst = TwoPartitionInstance(values=(3, 1, 1, 2, 2, 1))
        subset = inst.solve()
        assert subset is not None
        assert inst.check(subset)

    def test_odd_sum_is_no(self):
        assert TwoPartitionInstance(values=(1, 2)).solve() is None

    def test_structural_no_instance(self):
        # 8 vs 1+1+1: no balanced split.
        assert TwoPartitionInstance(values=(8, 1, 1, 1)).solve() is None

    def test_generator_force_yes(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            inst = random_two_partition_instance(rng, 5, force_yes=True)
            assert inst.is_yes_instance()

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TwoPartitionInstance(values=(0, 1))


class TestThreePartition:
    def test_yes_instance(self):
        inst = ThreePartitionInstance(values=(26, 33, 41, 30, 30, 40), bound=100)
        triples = inst.solve()
        assert triples is not None
        assert inst.check(triples)

    def test_no_instance(self):
        # Values obey the bounds and sum to 2B, but no partition exists:
        # the only multisets from {5, 7} summing to 16 would need a 6.
        inst = ThreePartitionInstance(
            values=(5, 5, 5, 5, 5, 7), bound=16
        )
        assert inst.solve() is None

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            ThreePartitionInstance(values=(10, 45, 45), bound=100)
        with pytest.raises(ValueError):
            ThreePartitionInstance(values=(26, 33, 42), bound=100)

    def test_generator_yields_yes_instances(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            inst = random_three_partition_yes_instance(rng, m=3, bound=100)
            assert inst.is_yes_instance()


class TestTheorem5Reduction:
    """Period / interval / heterogeneous processors / homogeneous pipelines."""

    def test_forward_direction(self):
        rng = np.random.default_rng(2)
        source = random_three_partition_yes_instance(rng, m=2, bound=16)
        red = PeriodIntervalReduction.build(source)
        triples = source.solve()
        mapping = red.mapping_from_partition(triples)
        red.problem.check_mapping(mapping)
        assert red.forward_value(triples) == pytest.approx(red.target_period)

    def test_backward_direction(self):
        rng = np.random.default_rng(3)
        source = random_three_partition_yes_instance(rng, m=2, bound=16)
        red = PeriodIntervalReduction.build(source)
        exact = exact_minimize(red.problem, Criterion.PERIOD)
        assert exact.objective == pytest.approx(red.target_period)
        triples = red.partition_from_mapping(exact.mapping)
        assert source.check(triples)

    def test_no_instance_blocks_target(self):
        source = ThreePartitionInstance(
            values=(5, 5, 5, 5, 5, 7), bound=16
        )
        assert source.solve() is None
        red = PeriodIntervalReduction.build(source)
        exact = exact_minimize(red.problem, Criterion.PERIOD)
        assert exact.objective > red.target_period * (1 + 1e-9)

    def test_weighted_variant_theorem6(self):
        rng = np.random.default_rng(4)
        source = random_three_partition_yes_instance(rng, m=2, bound=16)
        weights = [1.0, 2.5]
        red = PeriodIntervalReduction.build(source, weights=weights)
        triples = source.solve()
        # After the w = 1/W_a rescaling the weighted period is still 1.
        assert red.forward_value(triples) == pytest.approx(1.0)

    def test_gadget_shape(self):
        rng = np.random.default_rng(5)
        source = random_three_partition_yes_instance(rng, m=2, bound=16)
        red = PeriodIntervalReduction.build(source)
        assert red.problem.n_apps == source.m
        assert red.problem.platform.n_processors == 3 * source.m
        assert all(
            app.is_homogeneous and not app.has_communication
            for app in red.problem.apps
        )


class TestTheorem9Reduction:
    """Latency / one-to-one / heterogeneous processors."""

    def test_forward_direction(self):
        rng = np.random.default_rng(6)
        source = random_three_partition_yes_instance(rng, m=2, bound=16)
        red = LatencyOneToOneReduction.build(source)
        triples = source.solve()
        mapping = red.mapping_from_partition(triples)
        red.problem.check_mapping(mapping)
        assert red.forward_value(triples) == pytest.approx(red.target_latency)

    def test_backward_direction(self):
        rng = np.random.default_rng(7)
        source = random_three_partition_yes_instance(rng, m=2, bound=16)
        red = LatencyOneToOneReduction.build(source)
        exact = exact_minimize(red.problem, Criterion.LATENCY)
        assert exact.objective == pytest.approx(red.target_latency)
        triples = red.partition_from_mapping(exact.mapping)
        assert source.check(triples)

    def test_no_instance_blocks_target(self):
        source = ThreePartitionInstance(values=(5, 5, 5, 5, 5, 7), bound=16)
        red = LatencyOneToOneReduction.build(source)
        exact = exact_minimize(red.problem, Criterion.LATENCY)
        assert exact.objective > red.target_latency * (1 + 1e-9)

    def test_single_application_is_easy(self):
        # The paper's (*) phenomenon: one application alone reaches the
        # optimal latency trivially (3 fastest processors).
        source = ThreePartitionInstance(values=(5, 6, 7), bound=18)
        red = LatencyOneToOneReduction.build(source)
        exact = exact_minimize(red.problem, Criterion.LATENCY)
        assert exact.objective == pytest.approx(18.0)


class TestTheorem26Reduction:
    """Tri-criteria / one-to-one / multi-modal / fully homogeneous."""

    @pytest.mark.parametrize(
        "values", [(1, 2, 3), (1, 1, 2), (1, 1, 2, 2)]
    )
    def test_yes_instances(self, values):
        source = TwoPartitionInstance(values=values)
        assert source.is_yes_instance()
        red = TriCriteriaOneToOneReduction.build(source)
        subset = source.solve()
        mapping = red.mapping_from_subset(subset)
        red.problem.check_mapping(mapping)
        v = red.problem.evaluate(mapping)
        assert v.meets(
            period=red.thresholds.period,
            latency=red.thresholds.latency,
            energy=red.thresholds.energy,
        )
        # Round-trip the subset.
        assert red.subset_from_mapping(mapping) == subset

    @pytest.mark.parametrize("values", [(1, 2), (3, 1, 1), (5, 1, 1, 1)])
    def test_no_instances(self, values):
        source = TwoPartitionInstance(values=values)
        assert not source.is_yes_instance()
        red = TriCriteriaOneToOneReduction.build(source)
        with pytest.raises(InfeasibleProblemError):
            exact_minimize(
                red.problem,
                Criterion.ENERGY,
                red.thresholds,
                fix_max_speed=False,
            )

    def test_exact_solver_recovers_partition(self):
        source = TwoPartitionInstance(values=(1, 2, 3))
        red = TriCriteriaOneToOneReduction.build(source)
        solution = exact_minimize(
            red.problem, Criterion.ENERGY, red.thresholds, fix_max_speed=False
        )
        subset = red.subset_from_mapping(solution.mapping)
        assert source.check(subset)

    def test_residual_bounds_hold(self):
        # The numerically-chosen X must satisfy the proof's residual caps.
        source = TwoPartitionInstance(values=(1, 2, 3))
        red = TriCriteriaOneToOneReduction.build(source)
        n = len(source.values)
        K, X, alpha = red.scale, red.perturbation, red.alpha
        for i in range(1, n + 1):
            a_i = source.values[i - 1]
            lo = K**i
            hi = K**i + a_i * X / K ** (i * (alpha - 1))
            w_i = K ** (i * (alpha + 1))
            f_energy = (hi**alpha - lo**alpha) - alpha * a_i * X
            f_latency = a_i * X - (w_i / lo - w_i / hi)
            assert abs(f_energy) < X * alpha / (2 * n)
            assert abs(f_latency) < X / (2 * n)


class TestTheorem27Reduction:
    """Tri-criteria / interval / big separator stages."""

    def test_yes_instance(self):
        source = TwoPartitionInstance(values=(1, 2, 3))
        red = TriCriteriaIntervalReduction.build(source)
        subset = source.solve()
        mapping = red.mapping_from_subset(subset)
        red.problem.check_mapping(mapping)
        v = red.problem.evaluate(mapping)
        assert v.meets(
            period=red.thresholds.period,
            latency=red.thresholds.latency,
            energy=red.thresholds.energy,
        )

    def test_no_instance(self):
        source = TwoPartitionInstance(values=(3, 1, 1))
        red = TriCriteriaIntervalReduction.build(source)
        with pytest.raises(InfeasibleProblemError):
            exact_minimize(
                red.problem,
                Criterion.ENERGY,
                red.thresholds,
                fix_max_speed=False,
            )

    def test_gadget_shape(self):
        source = TwoPartitionInstance(values=(1, 2, 3))
        red = TriCriteriaIntervalReduction.build(source)
        n = len(source.values)
        app = red.problem.apps[0]
        assert app.n_stages == 2 * n - 1
        assert red.problem.platform.n_processors == 2 * n - 1
        # Big stages dominate the small ones.
        assert app.works[1] > app.works[0]
        assert app.works[1] > app.works[2 * n - 2]
