"""Tests for the period/energy interval DPs (Theorems 18 and 21)."""

import math

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    EnergyModel,
    InfeasibleProblemError,
    Platform,
    ProblemInstance,
    SolverError,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_given_period_interval,
    minimize_period_interval,
    single_app_energy_table,
)
from repro.algorithms.energy_interval import cheapest_feasible_speed
from repro.algorithms.exact import brute_force_minimize, exact_minimize
from repro.algorithms.interval_period import interval_cycle
from repro.generators import random_application, random_applications, rng_from

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP
BOTH_MODELS = [OVERLAP, NO_OVERLAP]
EM = EnergyModel(alpha=2.0)


def brute_force_min_energy(app, q, speeds, e_stat, bw, model, bound, em):
    """Reference: min energy over partitions into <= q intervals and all
    per-interval mode choices meeting the period bound."""
    import itertools

    best = math.inf
    for partition in app.iter_interval_partitions():
        if len(partition) > q:
            continue
        for choice in itertools.product(speeds, repeat=len(partition)):
            if any(
                interval_cycle(app, iv, s, bw, model) > bound * (1 + 1e-9)
                for iv, s in zip(partition, choice)
            ):
                continue
            energy = sum(e_stat + em.dynamic(s) for s in choice)
            best = min(best, energy)
    return best


class TestCheapestFeasibleSpeed:
    def test_picks_slowest_feasible(self):
        app = Application.from_lists([4], [0])
        s = cheapest_feasible_speed(app, (0, 0), [1.0, 2.0, 4.0], 1.0, OVERLAP, 2.1)
        assert s == 2.0

    def test_none_when_too_slow(self):
        app = Application.from_lists([100], [0])
        assert (
            cheapest_feasible_speed(app, (0, 0), [1.0, 2.0], 1.0, OVERLAP, 1.0)
            is None
        )

    def test_communication_floor(self):
        # A fast mode cannot fix a communication-bound interval.
        app = Application.from_lists([1], [50], input_data_size=0)
        assert (
            cheapest_feasible_speed(app, (0, 0), [9.0], 1.0, OVERLAP, 2.0)
            is None
        )


class TestTheorem18SingleApp:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed, model):
        rng = rng_from(seed)
        app = random_application(rng, int(rng.integers(1, 6)))
        speeds = (1.0, 2.0, 3.0)
        e_stat, bw = 0.5, 1.5
        # A bound that is feasible at top speed but not trivially loose.
        top = max(
            interval_cycle(app, (k, k), speeds[-1], bw, model)
            for k in range(app.n_stages)
        )
        bound = top * 1.2
        table = single_app_energy_table(
            app, app.n_stages, speeds, e_stat, bw, model, bound, EM
        )
        for q in range(1, app.n_stages + 1):
            expected = brute_force_min_energy(
                app, q, speeds, e_stat, bw, model, bound, EM
            )
            assert table.energy(q) == pytest.approx(expected), (seed, q)

    def test_reconstruction_consistent(self):
        rng = rng_from(77)
        app = random_application(rng, 5)
        speeds = (1.0, 2.0, 4.0)
        bound = 6.0
        table = single_app_energy_table(
            app, 5, speeds, 0.0, 1.0, OVERLAP, bound, EM
        )
        for q in range(1, 6):
            if not math.isfinite(table.energy(q)):
                continue
            placements = table.reconstruct(q)
            energy = sum(EM.dynamic(s) for _, s in placements)
            assert energy == pytest.approx(table.energy(q))
            for iv, s in placements:
                assert interval_cycle(app, iv, s, 1.0, OVERLAP) <= bound * (
                    1 + 1e-9
                )

    def test_energy_non_increasing_in_q(self):
        # More allowed processors never increases the optimal energy
        # (at-most semantics).
        app = Application.from_lists([6, 6, 6], [0.5, 0.5, 0.5])
        table = single_app_energy_table(
            app, 3, (1.0, 2.0, 6.0), 0.0, 1.0, OVERLAP, 3.0, EM
        )
        values = [table.energy(q) for q in range(1, 4)]
        finite = [v for v in values if math.isfinite(v)]
        assert all(a >= b for a, b in zip(finite, finite[1:]))

    def test_splitting_can_save_energy(self):
        # One fast processor (energy 36) vs two slow ones (energy 2x4=8):
        # under a bound of 3, splitting wins despite enrolling two procs.
        app = Application.from_lists([6, 6], [0.0, 0.0])
        table = single_app_energy_table(
            app, 2, (2.0, 6.0), 0.0, 1.0, OVERLAP, 3.0, EM
        )
        assert table.energy(1) == pytest.approx(36.0)
        assert table.energy(2) == pytest.approx(8.0)

    def test_static_energy_discourages_splitting(self):
        # Same shape, but a huge static cost makes one processor cheaper.
        app = Application.from_lists([6, 6], [0.0, 0.0])
        table = single_app_energy_table(
            app, 2, (2.0, 6.0), 100.0, 1.0, OVERLAP, 3.0, EM
        )
        assert table.energy(2) == pytest.approx(136.0)  # one fast proc


class TestTheorem21MultiApp:
    def make_problem(self, seed, model=OVERLAP, n_apps=2, n_modes=3):
        rng = rng_from(seed)
        apps = random_applications(rng, n_apps, stage_range=(1, 3))
        platform = Platform.fully_homogeneous(
            4, speeds=[1.0, 2.0, 3.0][:n_modes], bandwidth=2.0
        )
        return ProblemInstance(
            apps=apps, platform=platform, model=model, energy_model=EM
        )

    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exact(self, seed, model):
        problem = self.make_problem(seed, model=model)
        base = minimize_period_interval(problem).objective
        thresholds = Thresholds(period=base * 1.5)
        fast = minimize_energy_given_period_interval(problem, thresholds)
        exact = exact_minimize(problem, Criterion.ENERGY, thresholds)
        assert fast.objective == pytest.approx(exact.objective)
        assert fast.values.period <= base * 1.5 * (1 + 1e-9)

    @pytest.mark.parametrize("seed", range(2))
    def test_matches_brute_force(self, seed):
        problem = self.make_problem(seed + 30, n_modes=2)
        base = minimize_period_interval(problem).objective
        thresholds = Thresholds(period=base * 2.0)
        fast = minimize_energy_given_period_interval(problem, thresholds)
        brute = brute_force_minimize(problem, Criterion.ENERGY, thresholds)
        assert fast.objective == pytest.approx(brute.objective)

    def test_per_app_period_bounds(self):
        problem = self.make_problem(5)
        base = minimize_period_interval(problem)
        per_app = tuple(
            base.values.periods[a] * 2.0 for a in range(problem.n_apps)
        )
        thresholds = Thresholds(per_app_period=per_app)
        fast = minimize_energy_given_period_interval(problem, thresholds)
        for a in range(problem.n_apps):
            assert fast.values.periods[a] <= per_app[a] * (1 + 1e-9)

    def test_infeasible_bound(self):
        problem = self.make_problem(2)
        with pytest.raises(InfeasibleProblemError):
            minimize_energy_given_period_interval(
                problem, Thresholds(period=1e-9)
            )

    def test_rejects_non_fully_homogeneous(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.comm_homogeneous([[1.0], [2.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        with pytest.raises(SolverError):
            minimize_energy_given_period_interval(
                problem, Thresholds(period=10)
            )

    def test_looser_bound_never_costs_more(self):
        problem = self.make_problem(8)
        base = minimize_period_interval(problem).objective
        e_tight = minimize_energy_given_period_interval(
            problem, Thresholds(period=base * 1.2)
        ).objective
        e_loose = minimize_energy_given_period_interval(
            problem, Thresholds(period=base * 3.0)
        ).objective
        assert e_loose <= e_tight + 1e-9
