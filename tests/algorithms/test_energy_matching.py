"""Tests for Theorem 19: period/energy one-to-one via bipartite matching."""

import math

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    EnergyModel,
    InfeasibleProblemError,
    MappingRule,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_given_period_one_to_one,
    minimize_period_one_to_one,
)
from repro.algorithms.energy_matching import build_cost_matrix, cheapest_stage_mode
from repro.algorithms.exact import exact_minimize
from repro.generators import random_applications, rng_from

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP
BOTH_MODELS = [OVERLAP, NO_OVERLAP]
EM = EnergyModel(alpha=2.0)


def comm_hom_problem(seed, model=OVERLAP, n_modes=3):
    rng = rng_from(seed)
    apps = random_applications(rng, 2, stage_range=(1, 3))
    total = sum(a.n_stages for a in apps)
    speed_sets = [
        sorted(float(rng.uniform(1, 4)) * m for m in [1.0, 1.5, 2.0][:n_modes])
        for _ in range(total + 1)
    ]
    platform = Platform.comm_homogeneous(
        speed_sets, bandwidth=float(rng.uniform(1, 3))
    )
    return ProblemInstance(
        apps=apps,
        platform=platform,
        rule=MappingRule.ONE_TO_ONE,
        model=model,
        energy_model=EM,
    )


class TestCostMatrix:
    def test_cheapest_stage_mode_picks_slowest_feasible(self):
        apps = (Application.from_lists([4], [0]),)
        platform = Platform.comm_homogeneous([[1.0, 2.0, 4.0]])
        problem = ProblemInstance(
            apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE,
            energy_model=EM,
        )
        energy, speed = cheapest_stage_mode(
            apps[0], 0, 0, platform, 0, 2.5, OVERLAP, EM
        )
        assert speed == 2.0 and energy == 4.0

    def test_infeasible_is_inf(self):
        apps = (Application.from_lists([100], [0]),)
        platform = Platform.comm_homogeneous([[1.0]])
        energy, speed = cheapest_stage_mode(
            apps[0], 0, 0, platform, 0, 1.0, OVERLAP, EM
        )
        assert energy == math.inf and speed is None

    def test_matrix_shape(self):
        problem = comm_hom_problem(0)
        stages, costs, speeds = build_cost_matrix(
            problem, Thresholds(period=100.0)
        )
        assert len(stages) == problem.n_stages_total
        assert all(
            len(row) == problem.platform.n_processors for row in costs
        )


class TestTheorem19:
    @pytest.mark.parametrize("model", BOTH_MODELS)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact(self, seed, model):
        problem = comm_hom_problem(seed, model=model)
        base = minimize_period_one_to_one(problem).objective
        thresholds = Thresholds(period=base * 1.5)
        fast = minimize_energy_given_period_one_to_one(problem, thresholds)
        exact = exact_minimize(problem, Criterion.ENERGY, thresholds)
        assert fast.objective == pytest.approx(exact.objective)
        assert fast.values.period <= base * 1.5 * (1 + 1e-9)
        problem.check_mapping(fast.mapping)

    def test_uses_slowest_sufficient_modes(self):
        # A loose period bound lets every processor idle in its lowest mode.
        problem = comm_hom_problem(3)
        thresholds = Thresholds(period=1e9)
        solution = minimize_energy_given_period_one_to_one(problem, thresholds)
        for x in solution.mapping.assignments:
            assert x.speed == problem.platform.processor(x.proc).min_speed

    def test_infeasible_bound(self):
        problem = comm_hom_problem(4)
        with pytest.raises(InfeasibleProblemError):
            minimize_energy_given_period_one_to_one(
                problem, Thresholds(period=1e-9)
            )

    def test_too_few_processors(self):
        apps = (Application.from_lists([1, 1], [0, 0]),)
        platform = Platform.comm_homogeneous([[1.0]])
        problem = ProblemInstance(apps=apps, platform=platform)
        with pytest.raises(InfeasibleProblemError):
            minimize_energy_given_period_one_to_one(
                problem, Thresholds(period=10.0)
            )

    def test_per_app_thresholds(self):
        problem = comm_hom_problem(6)
        base = minimize_period_one_to_one(problem)
        per_app = tuple(
            base.values.periods[a] * 1.4 for a in range(problem.n_apps)
        )
        thresholds = Thresholds(per_app_period=per_app)
        fast = minimize_energy_given_period_one_to_one(problem, thresholds)
        for a in range(problem.n_apps):
            assert fast.values.periods[a] <= per_app[a] * (1 + 1e-9)

    def test_matching_cost_equals_energy(self):
        problem = comm_hom_problem(7)
        thresholds = Thresholds(period=1e6)
        solution = minimize_energy_given_period_one_to_one(problem, thresholds)
        assert solution.stats["matching_cost"] == pytest.approx(
            solution.values.energy
        )
