"""Tests for the Tables 1-2 registry and the auto-dispatching facade."""

import pytest

from repro import (
    Application,
    Criterion,
    MappingRule,
    Platform,
    PlatformClass,
    ProblemInstance,
)
from repro.algorithms import minimize_latency, minimize_period
from repro.algorithms.registry import (
    TABLE1,
    TABLE2,
    Complexity,
    ComplexityEntry,
    PlatformCell,
    classify_platform_cell,
    expected_complexity,
    lookup,
)
from repro.generators import special_app_family


class TestTables:
    def test_table1_covers_all_cells(self):
        # 2 criteria x 2 rules x 4 platform columns.
        assert len(TABLE1) == 16
        combos = {(e.criteria, e.rule, e.cell) for e in TABLE1}
        assert len(combos) == len(TABLE1)

    def test_table1_polynomial_cells_have_solvers(self):
        for e in TABLE1:
            if e.complexity is Complexity.POLYNOMIAL:
                assert e.solver is not None, e

    def test_table2_hard_cells_have_no_polynomial_solver(self):
        for e in TABLE2:
            if e.complexity in (Complexity.NP_COMPLETE, Complexity.NP_HARD):
                assert e.solver is None, e

    def test_paper_headline_claims(self):
        # Table 1: period/interval on special-app is the starred entry.
        e = lookup(
            [Criterion.PERIOD], MappingRule.INTERVAL, PlatformCell.SPECIAL_APP
        )
        assert e.complexity is Complexity.NP_COMPLETE
        assert "5" in e.theorem
        # Table 2: tri-criteria hard even on proc-hom (multi-modal).
        e = lookup(
            [Criterion.PERIOD, Criterion.LATENCY, Criterion.ENERGY],
            MappingRule.ONE_TO_ONE,
            PlatformCell.PROC_HOM,
        )
        assert e.complexity is Complexity.NP_HARD
        assert e.multi_modal_only

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup([Criterion.ENERGY], MappingRule.INTERVAL, PlatformCell.PROC_HOM)

    def test_criteria_order_normalized(self):
        a = lookup(
            [Criterion.LATENCY, Criterion.PERIOD],
            MappingRule.INTERVAL,
            PlatformCell.PROC_HOM,
        )
        b = lookup(
            [Criterion.PERIOD, Criterion.LATENCY],
            MappingRule.INTERVAL,
            PlatformCell.PROC_HOM,
        )
        assert a is b


class TestClassification:
    def test_fully_homogeneous(self):
        apps = (Application.from_lists([1], [1]),)
        problem = ProblemInstance(
            apps=apps, platform=Platform.fully_homogeneous(2, [1.0])
        )
        assert classify_platform_cell(problem) is PlatformCell.PROC_HOM

    def test_special_app(self):
        apps = special_app_family(2, 3)
        problem = ProblemInstance(
            apps=apps, platform=Platform.comm_homogeneous([[1.0], [2.0]])
        )
        assert classify_platform_cell(problem) is PlatformCell.SPECIAL_APP

    def test_comm_hom_with_communication(self):
        apps = (Application.from_lists([1, 1], [1, 1]),)
        problem = ProblemInstance(
            apps=apps, platform=Platform.comm_homogeneous([[1.0], [2.0]])
        )
        assert classify_platform_cell(problem) is PlatformCell.PROC_HET_COM_HOM

    def test_fully_heterogeneous(self):
        apps = (Application.from_lists([1], [0]),)
        platform = Platform.fully_heterogeneous([[1.0], [2.0]], {(0, 1): 0.5})
        problem = ProblemInstance(apps=apps, platform=platform)
        assert (
            classify_platform_cell(problem) is PlatformCell.PROC_HET_COM_HET
        )

    def test_expected_complexity(self):
        apps = special_app_family(2, 3)
        problem = ProblemInstance(
            apps=apps, platform=Platform.comm_homogeneous([[1.0], [2.0]])
        )
        e = expected_complexity(problem, [Criterion.PERIOD])
        assert e.complexity is Complexity.NP_COMPLETE


class TestFacade:
    def test_auto_dispatch_interval_period(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        problem = ProblemInstance(
            apps=apps, platform=Platform.fully_homogeneous(3, [2.0])
        )
        s = minimize_period(problem)
        assert s.solver.startswith("theorem3")

    def test_auto_dispatch_one_to_one_period(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        problem = ProblemInstance(
            apps=apps,
            platform=Platform.comm_homogeneous([[1.0], [2.0], [3.0]]),
            rule=MappingRule.ONE_TO_ONE,
        )
        s = minimize_period(problem)
        assert s.solver.startswith("theorem1")

    def test_exact_method(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        problem = ProblemInstance(
            apps=apps, platform=Platform.fully_homogeneous(3, [2.0])
        )
        auto = minimize_period(problem)
        exact = minimize_period(problem, method="exact")
        assert auto.objective == pytest.approx(exact.objective)

    def test_heuristic_method(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        platform = Platform.fully_heterogeneous(
            [[1.0], [2.0], [3.0]], {(0, 1): 0.5, (0, 2): 2.0, (1, 2): 1.0}
        )
        problem = ProblemInstance(apps=apps, platform=platform)
        s = minimize_period(problem, method="heuristic")
        assert not s.optimal
        problem.check_mapping(s.mapping)

    def test_latency_auto_dispatch(self):
        apps = (Application.from_lists([2, 2], [1, 1]),)
        problem = ProblemInstance(
            apps=apps, platform=Platform.comm_homogeneous([[1.0], [2.0]])
        )
        s = minimize_latency(problem)
        assert s.solver.startswith("theorem12")

    def test_unknown_method(self):
        apps = (Application.from_lists([1], [0]),)
        problem = ProblemInstance(
            apps=apps, platform=Platform.fully_homogeneous(1, [1.0])
        )
        with pytest.raises(ValueError):
            minimize_period(problem, method="bogus")
