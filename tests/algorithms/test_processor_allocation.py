"""Tests for Algorithm 2 (greedy processor allocation)."""

import itertools
import math

import pytest

from repro import InfeasibleProblemError
from repro.algorithms.processor_allocation import allocate_processors


def brute_force_allocation(n_apps, n_procs, value):
    """Optimal max over all distributions (reference)."""
    best = math.inf
    for counts in itertools.product(
        range(1, n_procs + 1), repeat=n_apps
    ):
        if sum(counts) > n_procs:
            continue
        best = min(best, max(value(a, q) for a, q in enumerate(counts)))
    return best


class TestAllocateProcessors:
    def test_simple_balancing(self):
        # Two identical applications, value = 12 / q.
        result = allocate_processors(2, 6, lambda a, q: 12.0 / q)
        assert result.counts == (3, 3)
        assert result.objective == pytest.approx(4.0)

    def test_weighted_imbalance(self):
        # App 0 is 4x heavier; it should receive more processors.
        values = {0: 40.0, 1: 10.0}
        result = allocate_processors(2, 5, lambda a, q: values[a] / q)
        assert result.counts[0] > result.counts[1]

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_on_random_tables(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n_apps = int(rng.integers(2, 4))
        n_procs = int(rng.integers(n_apps, n_apps + 4))
        # Random non-increasing value tables.
        tables = []
        for _ in range(n_apps):
            steps = np.sort(rng.uniform(0.1, 10, size=n_procs))[::-1]
            tables.append([float(x) for x in steps])

        def value(a, q):
            return tables[a][min(q, n_procs) - 1]

        greedy = allocate_processors(n_apps, n_procs, value)
        exact = brute_force_allocation(n_apps, n_procs, value)
        assert greedy.objective == pytest.approx(exact)

    def test_infeasible_values_attract_processors(self):
        # App 0 infeasible until it has 3 processors.
        def value(a, q):
            if a == 0:
                return math.inf if q < 3 else 1.0
            return 2.0 / q

        result = allocate_processors(2, 4, value)
        assert result.counts[0] == 3
        assert math.isfinite(result.objective)

    def test_max_useful_caps(self):
        calls = []

        def value(a, q):
            calls.append((a, q))
            return 10.0 / q

        result = allocate_processors(2, 10, value, max_useful=[2, 2])
        assert result.counts == (2, 2)
        assert result.n_processors_used == 4

    def test_history_records_grants(self):
        result = allocate_processors(2, 5, lambda a, q: 10.0 / q)
        assert len(result.history) == 3
        # The running objective is non-increasing.
        objectives = [o for _, o in result.history]
        assert all(x >= y for x, y in zip(objectives, objectives[1:]))

    def test_too_few_processors(self):
        with pytest.raises(InfeasibleProblemError):
            allocate_processors(3, 2, lambda a, q: 1.0)

    def test_no_apps(self):
        with pytest.raises(InfeasibleProblemError):
            allocate_processors(0, 2, lambda a, q: 1.0)

    def test_max_useful_wrong_length(self):
        with pytest.raises(ValueError):
            allocate_processors(2, 4, lambda a, q: 1.0, max_useful=[1])
