"""The Python client (:mod:`repro.client`) against a live daemon."""

import pytest

from repro.client import (
    ClientError,
    JobFailedError,
    RemoteResult,
    ServerUnavailableError,
    SolveClient,
)
from repro.core.problem import Solution
from repro.generators import small_random_problem
from repro.server import ServerThread
from repro.strategies import SolveBudget, SolveTelemetry


@pytest.fixture(scope="module")
def server():
    with ServerThread(executor="thread", concurrency=2) as handle:
        yield handle


@pytest.fixture()
def client(server):
    return SolveClient(server.url, timeout=10.0)


class TestEndpoints:
    def test_healthz_and_metrics(self, client):
        assert client.healthz()["status"] == "ok"
        assert "jobs" in client.metrics()

    def test_solve_round_trip_decodes_solution(self, client):
        result = client.solve(small_random_problem(200), timeout=60)
        assert result.ok
        assert isinstance(result.solution, Solution)
        assert result.solution.objective > 0
        # Per-application criteria survive the wire format.
        assert result.solution.values.periods
        assert isinstance(result.telemetry, SolveTelemetry)
        assert result.source in ("solved", "cache", "coalesced")

    def test_resolve_is_served_from_cache(self, client):
        problem = small_random_problem(201)
        first = client.solve(problem, timeout=60)
        second = client.solve(problem, timeout=60)
        assert second.source == "cache"
        assert second.solution.objective == first.solution.objective

    def test_submit_with_strategy_and_budget(self, client):
        result = client.solve(
            small_random_problem(202),
            strategy="greedy",
            budget=SolveBudget(max_evaluations=50000, seed=1),
            timeout=60,
        )
        assert result.ok
        assert result.telemetry.strategy == "greedy"
        assert result.telemetry.evaluations > 0

    def test_submit_many_iter_results(self, client):
        problems = [small_random_problem(210 + i) for i in range(4)]
        ids = client.submit_many(problems, objective="latency")
        assert len(ids) == len(set(ids)) == 4
        seen = {r.job_id: r for r in client.iter_results(ids, timeout=120)}
        assert set(seen) == set(ids)
        assert all(r.ok for r in seen.values())

    def test_jobs_listing(self, client):
        client.solve(small_random_problem(220), timeout=60)
        jobs = client.jobs(state="done", limit=3)
        assert jobs and all(j["state"] == "done" for j in jobs)

    def test_server_side_validation_raises_client_error(self, client):
        with pytest.raises(ClientError, match="objective"):
            client.submit(small_random_problem(221), objective="bogus")

    def test_wait_timeout(self, client, server):
        view = client.submit(small_random_problem(222))
        try:
            # A zero deadline can only be met if the job raced to
            # completion before the first poll.
            result = client.wait(view["id"], timeout=0.0)
        except TimeoutError as exc:
            assert "not finished" in str(exc)
            result = client.wait(view["id"], timeout=60)
        assert result.ok

    def test_cancel_unknown_job(self, client):
        with pytest.raises(ClientError):
            client.cancel("jxxx")


class TestRetries:
    def test_unreachable_server_raises_after_retries(self):
        client = SolveClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=0.2,
            retries=1,
            backoff=0.01,
        )
        with pytest.raises(ServerUnavailableError, match="2 attempts"):
            client.healthz()

    def test_http_errors_are_not_retried(self, client):
        # 4xx surfaces immediately with the server's message.
        with pytest.raises(ClientError, match="unknown job"):
            client.job("jxxx")


class TestWaitBackoff:
    """Regression: ``wait`` must not busy-poll a slow job.

    The fixed-interval poller sent one status request every 20 ms for
    the whole life of a job; a 10 s job cost ~500 requests (times every
    concurrent waiter).  The jittered exponential schedule (doubling
    from ``poll_interval`` to the 2 s cap) sends O(log) + tail/2s.
    """

    def _stubbed_wait(self, monkeypatch, pending_seconds, **wait_kwargs):
        client = SolveClient("http://127.0.0.1:9", retries=0)
        clock = {"t": 0.0}
        sleeps = []
        polls = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["t"] += seconds

        def fake_job(job_id):
            polls.append(clock["t"])
            done = clock["t"] >= pending_seconds
            return {"id": job_id, "state": "done" if done else "running"}

        def fake_result(job_id):
            return RemoteResult(
                job_id=job_id, status="ok", source="solved", wall_time=0.0
            )

        monkeypatch.setattr(client, "job", fake_job)
        monkeypatch.setattr(client, "result", fake_result)
        import repro.client as client_module

        monkeypatch.setattr(client_module.time, "sleep", fake_sleep)
        result = client.wait("j1", timeout=None, **wait_kwargs)
        return result, polls, sleeps

    def test_ten_second_job_costs_log_requests(self, monkeypatch):
        result, polls, sleeps = self._stubbed_wait(monkeypatch, 10.0)
        assert result.ok
        # Fixed 20 ms polling would be ~500 requests; exponential
        # backoff to the 2 s cap stays in the low tens.
        assert 5 <= len(polls) <= 18
        assert sleeps[0] <= 0.02
        assert max(sleeps) <= 2.0  # capped at max_poll_interval
        assert sleeps[-1] >= 0.5  # and the tail really reached the cap

    def test_fast_job_still_resolves_immediately(self, monkeypatch):
        result, polls, sleeps = self._stubbed_wait(monkeypatch, 0.0)
        assert result.ok
        assert len(polls) == 1
        assert sleeps == []

    def test_jitter_stays_within_half_to_full_delay(self):
        for _ in range(200):
            assert 1.0 <= SolveClient._jittered(2.0) < 2.0


class TestRemoteResultDecoding:
    def test_minimal_payload(self):
        result = RemoteResult.from_payload(
            {"id": "j1", "status": "infeasible", "wall_time": 0.5}
        )
        assert result.job_id == "j1"
        assert not result.ok
        assert result.solution is None
        assert result.telemetry is None

    def test_cancelled_wait_raises_job_failed(self, client, server):
        # Saturate the queue so a submission is still cancellable.
        ids = client.submit_many(
            [small_random_problem(230 + i) for i in range(6)]
        )
        victim = ids[-1]
        if client.cancel(victim):
            with pytest.raises(JobFailedError, match="cancelled"):
                client.wait(victim, timeout=60)
        for result in client.iter_results(ids, timeout=120):
            assert result.status in ("ok", "infeasible", "cancelled")
