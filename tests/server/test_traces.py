"""End-to-end tracing: span trees through a live daemon and router.

The acceptance bar from the ISSUE, verbatim: a job submitted via
``SolveClient`` through the router returns a trace id, and
``GET /v1/traces/{id}`` on the router yields the merged span tree —
client submit → route decision → queue wait → pool dispatch → solver
phases → cache write.
"""

import urllib.request

import pytest

from repro.client import ClientError, SolveClient
from repro.generators import small_random_problem
from repro.obs.export import parse_prometheus
from repro.obs.render import format_span_tree
from repro.server import ServerThread
from repro.server.router import RouterThread


@pytest.fixture(scope="module")
def daemon():
    with ServerThread(executor="thread", concurrency=2) as srv:
        yield srv


@pytest.fixture(scope="module")
def fleet():
    """A 2-shard router fleet hosted in-process."""
    with ServerThread(executor="thread", concurrency=2, shard="s0") as a, \
         ServerThread(executor="thread", concurrency=2, shard="s1") as b:
        with RouterThread([("s0", a.url), ("s1", b.url)]) as router:
            yield router


def _span_names(payload):
    return {s["name"] for s in payload["spans"]}


def _assert_well_formed_tree(payload):
    spans = payload["spans"]
    ids = {s["span_id"] for s in spans}
    assert len(ids) == len(spans), "span ids must be unique after merging"
    assert all(s["trace_id"] == payload["trace_id"] for s in spans)
    roots = [s for s in spans if s["parent_id"] is None]
    assert [r["name"] for r in roots] == ["client.submit"]
    # every non-root span hangs off a span present in the tree
    for s in spans:
        if s["parent_id"] is not None:
            assert s["parent_id"] in ids, s["name"]


class TestDaemonTraces:
    def test_solve_returns_trace_id_and_span_tree(self, daemon):
        client = SolveClient(daemon.url, timeout=30.0)
        result = client.solve(small_random_problem(101), timeout=60)
        assert result.ok
        trace_id = client.job(result.job_id)["trace_id"]
        assert trace_id
        payload = client.trace(trace_id)
        assert payload["trace_id"] == trace_id
        assert payload["count"] == len(payload["spans"])
        _assert_well_formed_tree(payload)
        assert {
            "client.submit",
            "daemon.submit",
            "daemon.dedup_lookup",
            "daemon.queue_wait",
            "daemon.pool_dispatch",
            "solve.run",
            "daemon.cache_write",
        } <= _span_names(payload)

    def test_solver_phase_spans_hang_off_pool_dispatch(self, daemon):
        client = SolveClient(daemon.url, timeout=30.0)
        result = client.solve(small_random_problem(102), timeout=60)
        payload = client.trace(client.job(result.job_id)["trace_id"])
        by_name = {s["name"]: s for s in payload["spans"]}
        dispatch = by_name["daemon.pool_dispatch"]
        assert by_name["solve.run"]["parent_id"] == dispatch["span_id"]
        assert dispatch["attrs"]["status"] == "ok"

    def test_cache_hit_trace_has_no_solver_spans(self, daemon):
        client = SolveClient(daemon.url, timeout=30.0)
        problem = small_random_problem(103)
        assert client.solve(problem, timeout=60).ok
        second = client.solve(problem, timeout=60)
        assert second.source == "cache"
        payload = client.trace(client.job(second.job_id)["trace_id"])
        names = _span_names(payload)
        assert "daemon.dedup_lookup" in names
        assert "solve.run" not in names
        lookup = next(
            s for s in payload["spans"] if s["name"] == "daemon.dedup_lookup"
        )
        assert lookup["attrs"]["cache_hit"] is True

    def test_unknown_trace_is_404(self, daemon):
        client = SolveClient(daemon.url, timeout=30.0)
        with pytest.raises(ClientError, match="404"):
            client.trace("t-no-such-trace")

    def test_tracing_opt_out_leaves_no_trace(self, daemon):
        client = SolveClient(daemon.url, timeout=30.0, tracing=False)
        result = client.solve(small_random_problem(104), timeout=60)
        assert result.ok
        assert client.job(result.job_id)["trace_id"] is None

    def test_span_tree_renders(self, daemon):
        client = SolveClient(daemon.url, timeout=30.0)
        result = client.solve(small_random_problem(105), timeout=60)
        payload = client.trace(client.job(result.job_id)["trace_id"])
        rendered = format_span_tree(payload["spans"])
        lines = rendered.splitlines()
        assert lines[0].startswith("client.submit")
        # daemon.submit is indented under the client root
        assert any(line.startswith("  daemon.submit") for line in lines)


class TestRouterTraces:
    def test_merged_tree_spans_client_route_queue_solve_cache(self, fleet):
        client = SolveClient(fleet.url, timeout=30.0)
        result = client.solve(small_random_problem(201), timeout=60)
        assert result.ok
        trace_id = client.job(result.job_id)["trace_id"]
        assert trace_id
        payload = client.trace(trace_id)
        _assert_well_formed_tree(payload)
        names = _span_names(payload)
        assert {
            "client.submit",
            "router.submit",
            "daemon.submit",
            "daemon.dedup_lookup",
            "daemon.queue_wait",
            "daemon.pool_dispatch",
            "solve.run",
            "daemon.cache_write",
        } <= names
        by_name = {s["name"]: s for s in payload["spans"]}
        route = by_name["router.submit"]
        assert route["parent_id"] == by_name["client.submit"]["span_id"]
        assert by_name["daemon.submit"]["parent_id"] == route["span_id"]
        assert route["attrs"]["shard"] in ("s0", "s1")

    def test_router_prometheus_scrape_is_consistent_with_json(self, fleet):
        client = SolveClient(fleet.url, timeout=30.0)
        assert client.solve(small_random_problem(202), timeout=60).ok
        json_payload = client.metrics()
        with urllib.request.urlopen(fleet.url + "/metrics", timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers.get("Content-Type", "").startswith("text/plain")
            text = resp.read().decode()
        families = parse_prometheus(text)
        ups = {
            labels["shard"]: value
            for labels, value in families["repro_shard_up"]
        }
        assert ups == {"s0": 1.0, "s1": 1.0}
        fleet_jobs = json_payload["fleet"]["jobs"]
        ((_, submitted),) = families["repro_fleet_jobs_submitted_total"]
        assert submitted == float(fleet_jobs["submitted"])


class TestProcessPoolTraces:
    """The fork path: a ProcessPoolExecutor worker inherits the daemon's
    ring buffer, so the pre-dispatch spans of the first traced job ride
    back on the worker's result item — the recorder must not duplicate
    them on ingest (regression: the merged tree rendered every subtree
    twice under ``executor="process"``)."""

    def test_forked_worker_does_not_duplicate_spans(self):
        with ServerThread(executor="process", concurrency=1) as srv:
            client = SolveClient(srv.url, timeout=60.0)
            result = client.solve(small_random_problem(301), timeout=120)
            assert result.ok
            payload = client.trace(client.job(result.job_id)["trace_id"])
            _assert_well_formed_tree(payload)
            names = [s["name"] for s in payload["spans"]]
            assert names.count("client.submit") == 1
            assert names.count("daemon.submit") == 1
            assert names.count("daemon.queue_wait") == 1
            by_name = {s["name"]: s for s in payload["spans"]}
            # the solver span is labeled with the worker process, not
            # the daemon's pid inherited across the fork
            if by_name["daemon.pool_dispatch"]["attrs"]["executor"] == "ProcessPoolExecutor":
                assert by_name["solve.run"]["proc"] != by_name["daemon.submit"]["proc"]
