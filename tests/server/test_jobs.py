"""Job records and outcome reconstruction (:mod:`repro.server.jobs`)."""

import pytest

from repro.experiments.spec import SolverSpec
from repro.generators import small_random_problem
from repro.io import mapping_to_dict, solution_to_dict
from repro.server import JobOutcome, JobRecord, JobState, new_job_id, solve_cell


SPEC = SolverSpec(name="t")


def solved_item():
    return solve_cell(small_random_problem(0), SPEC)


class TestJobIds:
    def test_ids_are_unique_and_submission_ordered(self):
        ids = [new_job_id() for _ in range(10)]
        assert len(set(ids)) == 10
        assert ids == sorted(ids)


class TestJobState:
    def test_terminal_states(self):
        assert JobState.DONE.finished and JobState.CANCELLED.finished
        assert not JobState.QUEUED.finished
        assert not JobState.RUNNING.finished


class TestJobOutcome:
    def test_from_batch_item(self):
        item = solved_item()
        outcome = JobOutcome.from_batch_item(item)
        assert outcome.ok
        assert outcome.solution is item.solution
        assert outcome.telemetry is item.telemetry
        assert outcome.wall_time == item.wall_time

    def test_from_daemon_cache_record_keeps_per_app_criteria(self):
        item = solved_item()
        payload = {
            "status": "ok",
            "wall_time": item.wall_time,
            "solution": solution_to_dict(item.solution, item.telemetry),
            "telemetry": item.telemetry.to_dict(),
        }
        outcome = JobOutcome.from_cache_payload(payload)
        assert outcome.ok
        assert outcome.solution.objective == item.solution.objective
        assert outcome.solution.values.periods == item.solution.values.periods
        assert outcome.telemetry.strategy == item.telemetry.strategy

    def test_from_campaign_cache_record(self):
        # The runner's record flavour: mapping + the 3 global criteria.
        item = solved_item()
        payload = {
            "schema": 2,
            "status": "ok",
            "wall_time": 0.01,
            "objective": item.solution.objective,
            "values": {
                "period": item.solution.values.period,
                "latency": item.solution.values.latency,
                "energy": item.solution.values.energy,
            },
            "algorithm": item.solution.solver,
            "optimal": item.solution.optimal,
            "mapping": mapping_to_dict(item.solution.mapping),
            "telemetry": item.telemetry.to_dict(),
        }
        outcome = JobOutcome.from_cache_payload(payload)
        assert outcome.ok
        assert outcome.solution.objective == item.solution.objective
        assert outcome.solution.mapping == item.solution.mapping
        # Per-application breakdown is not stored in campaign records.
        assert outcome.solution.values.periods == {}

    def test_infeasible_and_error_records(self):
        infeasible = JobOutcome.from_cache_payload(
            {"status": "infeasible", "error": "no mapping"}
        )
        assert infeasible.status == "infeasible"
        assert infeasible.solution is None
        # An "ok" record with no solution payload is corrupt: degraded
        # to an error rather than served as a phantom success.
        corrupt = JobOutcome.from_cache_payload({"status": "ok"})
        assert corrupt.status == "error"


class TestJobRecord:
    def test_lifecycle_and_summary(self):
        problem = small_random_problem(1)
        job = JobRecord(
            id=new_job_id(),
            key="k",
            priority=3,
            problem=problem,
            solver=SolverSpec(name="s", strategy="greedy"),
        )
        summary = job.request_summary()
        assert summary["apps"] == problem.n_apps
        assert summary["solver"] == {
            "objective": "period",
            "strategy": "greedy",
        }
        assert job.state is JobState.QUEUED
        job.mark_running()
        assert job.state is JobState.RUNNING
        outcome = JobOutcome.from_batch_item(solved_item())
        job.resolve(outcome, source="solved")
        assert job.state is JobState.DONE
        assert job.outcome is outcome
        assert job.source == "solved"

    def test_method_and_budget_in_summary(self):
        from repro.strategies import SolveBudget

        job = JobRecord(
            id=new_job_id(),
            key="k",
            priority=0,
            problem=small_random_problem(1),
            solver=SolverSpec(
                name="s", budget=SolveBudget(max_evaluations=10)
            ),
        )
        solver = job.request_summary()["solver"]
        assert solver["method"] == "registry"
        assert solver["budget"] == {"max_evaluations": 10}
