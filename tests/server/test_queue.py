"""Queue semantics of :class:`repro.server.SolveService`.

Everything here runs with a ``"thread"`` executor and (mostly) stub
runners, so the tests exercise ordering, coalescing, cancellation and
shutdown — not the solvers themselves.
"""

import asyncio
import threading
import time

import pytest

from repro.experiments.spec import SolverSpec
from repro.generators import small_random_problem
from repro.server import (
    JobState,
    ServiceClosedError,
    SolveService,
    UnknownJobError,
    solve_cell,
)
SPEC = SolverSpec(name="t")


def problem(seed=0):
    return small_random_problem(seed)


# One real solved item, reused by every stub runner (solving is not
# under test here).
_REAL_ITEM = solve_cell(problem(0), SPEC)


class CountingRunner:
    """Picklable-free stub runner: records call order, optionally blocks."""

    def __init__(self, gate: threading.Event = None):
        self.calls = []
        self.gate = gate
        self.started = threading.Event()

    def __call__(self, prob, solver):
        self.calls.append((prob, solver))
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10), "runner gate never opened"
        return _REAL_ITEM


def run(coro):
    return asyncio.run(coro)


async def _drain(service):
    await service.shutdown(drain_queue=True)


class TestPriorityOrdering:
    def test_higher_priority_runs_first_ties_fifo(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            # Submitted before start so the initial order is unambiguous.
            jobs = [
                service.submit(problem(seed), SPEC, priority=prio)
                for seed, prio in [(1, 0), (2, 5), (3, 1), (4, 5)]
            ]
            await service.start()
            await _drain(service)
            assert all(j.state is JobState.DONE for j in jobs)
            return [p for p, _ in runner.calls]

        executed = run(scenario())
        # priority 5 first (seeds 2 then 4, FIFO tie), then 1, then 0.
        assert executed == [problem(2), problem(4), problem(3), problem(1)]

    def test_coalesced_higher_priority_bumps_the_cell(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            low = service.submit(problem(1), SPEC, priority=0)
            other = service.submit(problem(2), SPEC, priority=1)
            bump = service.submit(problem(1), SPEC, priority=10)
            await service.start()
            await _drain(service)
            assert low.state is JobState.DONE
            assert bump.state is JobState.DONE
            assert other.state is JobState.DONE
            return [p for p, _ in runner.calls]

        executed = run(scenario())
        # The duplicate's priority 10 pulls seed-1 ahead of seed-2, and
        # the cell still solves only once.
        assert executed == [problem(1), problem(2)]


class TestCoalescing:
    def test_duplicate_submission_solves_once(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            first = service.submit(problem(7), SPEC)
            dup = service.submit(problem(7), SPEC)
            assert dup.key == first.key
            await service.start()
            await _drain(service)
            return service, runner, first, dup

        service, runner, first, dup = run(scenario())
        assert len(runner.calls) == 1, "identical cells must solve once"
        assert first.state is JobState.DONE and dup.state is JobState.DONE
        assert first.source == "solved"
        assert dup.source == "coalesced"
        # Both jobs share the exact same outcome object.
        assert dup.outcome is first.outcome
        assert dup.outcome.solution.objective == pytest.approx(
            first.outcome.solution.objective
        )
        m = service.metrics()
        assert m["jobs"]["solved"] == 1
        assert m["jobs"]["coalesced"] == 1
        assert m["jobs"]["completed"] == 2

    def test_coalescing_onto_a_running_cell(self):
        async def scenario():
            gate = threading.Event()
            runner = CountingRunner(gate)
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            await service.start()
            first = service.submit(problem(7), SPEC)
            while first.state is not JobState.RUNNING:
                await asyncio.sleep(0.005)
            dup = service.submit(problem(7), SPEC)
            assert dup.state is JobState.RUNNING  # riding along
            gate.set()
            await service.wait(dup.id, timeout=10)
            await service.shutdown()
            return runner, first, dup

        runner, first, dup = run(scenario())
        assert len(runner.calls) == 1
        assert first.source == "solved" and dup.source == "coalesced"

    def test_cache_hit_completes_without_queueing(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            await service.start()
            first = service.submit(problem(9), SPEC)
            await service.wait(first.id, timeout=10)
            n_calls = len(runner.calls)
            hit = service.submit(problem(9), SPEC)
            # Born DONE: no queueing, no solving, telemetry preserved.
            assert hit.state is JobState.DONE
            assert hit.source == "cache"
            assert len(runner.calls) == n_calls
            assert hit.outcome.solution is not None
            assert hit.outcome.telemetry is not None
            await service.shutdown()
            return service

        service = run(scenario())
        m = service.metrics()
        assert m["jobs"]["cache_hits"] == 1
        assert m["jobs"]["solved"] == 1

    def test_distinct_solver_configs_do_not_coalesce(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            a = service.submit(problem(3), SolverSpec(name="a"))
            b = service.submit(
                problem(3), SolverSpec(name="b", objective="latency")
            )
            assert a.key != b.key
            await service.start()
            await _drain(service)
            return runner

        runner = run(scenario())
        assert len(runner.calls) == 2


class TestCancellation:
    def test_cancel_queued_job(self):
        async def scenario():
            gate = threading.Event()
            runner = CountingRunner(gate)
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            await service.start()
            blocker = service.submit(problem(1), SPEC)
            while not runner.started.is_set():
                await asyncio.sleep(0.005)
            victim = service.submit(problem(2), SPEC)
            assert service.cancel(victim.id) is True
            assert victim.state is JobState.CANCELLED
            gate.set()
            await service.wait(blocker.id, timeout=10)
            await service.shutdown()
            return runner, victim, service

        runner, victim, service = run(scenario())
        # The cancelled cell never reached the runner.
        assert [p for p, _ in runner.calls] == [problem(1)]
        assert service.metrics()["jobs"]["cancelled"] == 1

    def test_cancel_running_or_done_job_is_refused(self):
        async def scenario():
            gate = threading.Event()
            runner = CountingRunner(gate)
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            await service.start()
            job = service.submit(problem(1), SPEC)
            while job.state is not JobState.RUNNING:
                await asyncio.sleep(0.005)
            assert service.cancel(job.id) is False
            gate.set()
            await service.wait(job.id, timeout=10)
            assert service.cancel(job.id) is False
            await service.shutdown()
            return job

        job = run(scenario())
        assert job.state is JobState.DONE

    def test_cancel_one_of_two_coalesced_jobs_keeps_the_cell(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            keep = service.submit(problem(5), SPEC)
            drop = service.submit(problem(5), SPEC)
            assert service.cancel(drop.id) is True
            await service.start()
            await _drain(service)
            return runner, keep, drop

        runner, keep, drop = run(scenario())
        assert len(runner.calls) == 1
        assert keep.state is JobState.DONE
        assert drop.state is JobState.CANCELLED

    def test_cancelling_every_job_of_a_cell_removes_it(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            only = service.submit(problem(5), SPEC)
            assert service.cancel(only.id) is True
            await service.start()
            await _drain(service)
            return runner

        runner = run(scenario())
        assert runner.calls == []

    def test_unknown_job_id_raises(self):
        service = SolveService(executor="thread", concurrency=1)
        with pytest.raises(UnknownJobError):
            service.job("nope")
        with pytest.raises(UnknownJobError):
            service.cancel("nope")


class TestShutdown:
    def test_graceful_shutdown_drains_in_flight_and_cancels_queued(self):
        async def scenario():
            gate = threading.Event()
            runner = CountingRunner(gate)
            service = SolveService(
                executor="thread", concurrency=1, runner=runner
            )
            await service.start()
            running = service.submit(problem(1), SPEC)
            while not runner.started.is_set():
                await asyncio.sleep(0.005)
            queued = service.submit(problem(2), SPEC)
            shutdown = asyncio.ensure_future(service.shutdown())
            await asyncio.sleep(0.02)
            with pytest.raises(ServiceClosedError):
                service.submit(problem(3), SPEC)
            gate.set()
            await shutdown
            return runner, running, queued

        runner, running, queued = run(scenario())
        # In-flight work drained to a real result ...
        assert running.state is JobState.DONE
        assert running.outcome.status == "ok"
        # ... while the queued cell was cancelled, not solved.
        assert queued.state is JobState.CANCELLED
        assert [p for p, _ in runner.calls] == [problem(1)]

    def test_shutdown_with_drain_queue_solves_everything(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread", concurrency=2, runner=runner
            )
            jobs = [service.submit(problem(s), SPEC) for s in range(4)]
            await service.start()
            await service.shutdown(drain_queue=True)
            return jobs

        jobs = run(scenario())
        assert all(j.state is JobState.DONE for j in jobs)

    def test_shutdown_before_start_is_safe(self):
        run(SolveService(executor="thread").shutdown())


class TestFailureContainment:
    def test_runner_exception_becomes_an_error_outcome(self):
        def exploding(prob, solver):
            raise RuntimeError("boom")

        async def scenario():
            service = SolveService(
                executor="thread", concurrency=1, runner=exploding
            )
            job = service.submit(problem(1), SPEC)
            await service.start()
            await service.wait(job.id, timeout=10)
            # Errors are not cached: a resubmission re-solves the cell.
            retry = service.submit(problem(1), SPEC)
            assert retry.source != "cache"
            await service.shutdown()
            return job, service

        job, service = run(scenario())
        assert job.state is JobState.DONE
        assert job.outcome.status == "error"
        assert "boom" in job.outcome.error
        assert service.metrics()["jobs"]["errors"] >= 1

    def test_concurrency_must_be_positive(self):
        with pytest.raises(ValueError):
            SolveService(concurrency=0, executor="thread")
        with pytest.raises(ValueError):
            SolveService(executor="bogus")


class TestJobRetention:
    def test_finished_jobs_are_evicted_beyond_the_cap(self):
        async def scenario():
            runner = CountingRunner()
            service = SolveService(
                executor="thread",
                concurrency=1,
                runner=runner,
                max_jobs_retained=3,
            )
            await service.start()
            ids = []
            for s in range(6):
                job = service.submit(problem(s), SPEC)
                ids.append(job.id)
                await service.wait(job.id, timeout=10)
            await service.shutdown()
            return service, ids

        service, ids = run(scenario())
        assert len(service.jobs()) == 3
        assert service.jobs(limit=0) == []
        assert len(service.jobs(limit=2)) == 2
        with pytest.raises(UnknownJobError):
            service.job(ids[0])
        # Newest first.
        assert [j.id for j in service.jobs()] == list(reversed(ids[-3:]))


class TestRealRunner:
    def test_default_runner_solves_and_meters_evaluations(self):
        async def scenario():
            service = SolveService(executor="thread", concurrency=1)
            job = service.submit(
                problem(11),
                SolverSpec(name="g", strategy="greedy"),
            )
            await service.start()
            await service.wait(job.id, timeout=60)
            await service.shutdown()
            return job, service

        job, service = run(scenario())
        assert job.outcome.status == "ok"
        assert job.outcome.telemetry.evaluations > 0
        m = service.metrics()
        assert m["solver"]["evaluations"] == job.outcome.telemetry.evaluations

    def test_wall_time_and_uptime_accounting(self):
        async def scenario():
            service = SolveService(executor="thread", concurrency=1)
            job = service.submit(problem(1), SPEC)
            await service.start()
            await service.wait(job.id, timeout=60)
            await service.shutdown()
            return job, service

        job, service = run(scenario())
        assert job.finished_at >= job.started_at >= job.submitted_at
        assert job.outcome.wall_time > 0
        assert service.metrics()["uptime_s"] >= 0
        assert time.time() >= job.finished_at - 1
