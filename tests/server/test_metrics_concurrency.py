"""Metrics under concurrency: hammer a daemon while scraping.

Satellite bar from the ISSUE: hammer the daemon from N threads while
scraping metrics concurrently, then assert the counter identities hold
— every submission attempt is accounted for
(``attempts == submitted + shed``, ``submitted == completed +
cancelled + in-flight``) and the histograms sum to the counters.

The daemon mutates every counter on its event-loop thread and builds
the ``/v1/metrics`` payload there too, so *each scrape* must already
satisfy the in-flight identity — not just the final drained state.
"""

import threading
import time
import urllib.request

from repro.client import ClientError, SolveClient
from repro.generators import small_random_problem
from repro.obs.export import parse_prometheus
from repro.server import ServerThread

N_THREADS = 8
PER_THREAD = 6


def _assert_snapshot_identity(metrics):
    jobs = metrics["jobs"]
    assert jobs["submitted"] == (
        jobs["completed"] + jobs["cancelled"] + metrics["jobs_in_flight"]
    ), metrics


def test_hammered_daemon_keeps_its_books(tmp_path):
    with ServerThread(
        executor="thread",
        concurrency=1,
        max_queue_depth=2,
        cache=tmp_path / "cache",
    ) as srv:
        counts = {"ok": 0, "shed": 0}
        lock = threading.Lock()
        failures = []
        stop_scraping = threading.Event()

        def hammer(worker_id):
            client = SolveClient(srv.url, timeout=30.0, retries=0)
            for i in range(PER_THREAD):
                problem = small_random_problem(1000 + worker_id * 100 + i)
                try:
                    client.submit(problem)
                except ClientError as exc:
                    if "429" in str(exc):
                        with lock:
                            counts["shed"] += 1
                    else:  # pragma: no cover - would fail the test below
                        failures.append(exc)
                else:
                    with lock:
                        counts["ok"] += 1

        def scrape():
            client = SolveClient(srv.url, timeout=30.0)
            while not stop_scraping.is_set():
                try:
                    _assert_snapshot_identity(client.metrics())
                    with urllib.request.urlopen(
                        srv.url + "/metrics", timeout=10
                    ) as resp:
                        families = parse_prometheus(resp.read().decode())
                    assert "repro_jobs_submitted_total" in families
                except AssertionError as exc:  # pragma: no cover
                    failures.append(exc)
                    return
                except (ClientError, OSError):
                    pass  # transient scrape failure: keep hammering
                time.sleep(0.001)

        scraper = threading.Thread(target=scrape)
        scraper.start()
        workers = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(N_THREADS)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()

        # Drain: every accepted job reaches a terminal state.
        client = SolveClient(srv.url, timeout=30.0)
        deadline = time.monotonic() + 60
        while client.metrics()["jobs_in_flight"] > 0:
            assert time.monotonic() < deadline, "daemon did not drain"
            time.sleep(0.02)
        stop_scraping.set()
        scraper.join()
        assert not failures, failures

        metrics = client.metrics()
        jobs = metrics["jobs"]

        # Every HTTP attempt the clients made is in exactly one bucket.
        attempts = N_THREADS * PER_THREAD
        assert counts["ok"] + counts["shed"] == attempts
        assert jobs["submitted"] == counts["ok"]
        assert jobs["shed"] == counts["shed"] == metrics["queue"]["shed"]
        assert jobs["shed"] > 0, (
            "depth-2 queue at concurrency 1 must shed under 8 hammers"
        )

        # Terminal accounting: nothing in flight, nothing lost.
        assert jobs["submitted"] == jobs["completed"] + jobs["cancelled"]
        assert jobs["cancelled"] == 0
        # Unique problems: no dedup paths taken.
        assert jobs["coalesced"] == 0 and jobs["cache_hits"] == 0
        assert jobs["solved"] == jobs["completed"]

        # Histograms sum to the counters they sample.
        hist = metrics["histograms"]
        assert hist["solve_wall_seconds"]["count"] == jobs["solved"]
        assert hist["queue_wait_seconds"]["count"] == jobs["solved"]
        # The dedup/cache probe runs for every attempt, shed included.
        assert hist["cache_lookup_seconds"]["count"] == attempts
        assert hist["evaluations_per_job"]["count"] == jobs["solved"]

        # The Prometheus text is rendered from this same payload: the
        # bucket counts must agree exactly.
        with urllib.request.urlopen(srv.url + "/metrics", timeout=10) as resp:
            families = parse_prometheus(resp.read().decode())
        ((_, prom_count),) = families["repro_solve_wall_seconds_count"]
        assert prom_count == float(hist["solve_wall_seconds"]["count"])
        inf_bucket = [
            value
            for labels, value in families["repro_solve_wall_seconds_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_bucket == [float(hist["solve_wall_seconds"]["count"])]
        ((_, submitted),) = families["repro_jobs_submitted_total"]
        assert submitted == float(jobs["submitted"])
