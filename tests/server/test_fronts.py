"""Anytime fronts through the daemon: protocol validation, the front
store's merge/refresh behavior, the HTTP + router endpoints, and portfolio
members as front contributors."""

import pytest

from repro.analysis import pareto_filter, period_energy_front_exact
from repro.client import ClientError, SolveClient
from repro.core.evaluation import CriteriaValues
from repro.core.problem import Solution
from repro.core.types import MappingRule, PlatformClass
from repro.generators import small_random_problem
from repro.io import problem_to_dict
from repro.server import RouterThread, ServerThread
from repro.server.fronts import FrontRecord, _member_points
from repro.server.jobs import JobOutcome, JobRecord
from repro.server.protocol import ProtocolError, parse_front_payload
from repro.strategies import SolveTelemetry


def np_hard_problem(seed=0):
    return small_random_problem(
        seed,
        platform_class=PlatformClass.COMM_HOMOGENEOUS,
        rule=MappingRule.INTERVAL,
        n_apps=2,
    )


class TestParseFrontPayload:
    def _payload(self, **extra):
        return {"problem": problem_to_dict(np_hard_problem()), **extra}

    def test_minimal(self):
        problem, template, points, priority = parse_front_payload(
            self._payload()
        )
        assert problem == np_hard_problem()
        assert points == 200 and priority == 0
        assert "objective" not in template

    def test_rejects_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown key"):
            parse_front_payload(self._payload(solvers=[]))

    def test_rejects_objective_in_template(self):
        with pytest.raises(ProtocolError, match="forbidden"):
            parse_front_payload(
                self._payload(solver={"objective": "energy"})
            )

    def test_rejects_max_period_in_template(self):
        with pytest.raises(ProtocolError, match="forbidden"):
            parse_front_payload(self._payload(solver={"max_period": 2.0}))

    def test_rejects_bad_strategy(self):
        with pytest.raises(ProtocolError, match="invalid 'solver'"):
            parse_front_payload(
                self._payload(solver={"strategy": "no-such-strategy"})
            )

    def test_rejects_bad_points(self):
        with pytest.raises(ProtocolError, match="'points'"):
            parse_front_payload(self._payload(points=0))
        with pytest.raises(ProtocolError, match="'points'"):
            parse_front_payload(self._payload(points="many"))

    def test_accepts_strategy_and_budget(self):
        _, template, _, _ = parse_front_payload(
            self._payload(
                solver={
                    "strategy": "portfolio(greedy,local_search)",
                    "budget": {"max_evaluations": 100, "seed": 0},
                },
                points=10,
                priority=3,
            )
        )
        assert template["strategy"] == "portfolio(greedy,local_search)"


def _telemetry(values=None, status="ok", members=()):
    return SolveTelemetry(
        strategy="t",
        status=status,
        wall_time=0.0,
        values=values,
        members=tuple(members),
    )


class TestMemberContributions:
    def test_member_points_walks_the_tree(self):
        tree = _telemetry(
            values=(2.0, 5.0, 40.0),
            members=[
                _telemetry(values=(3.0, 6.0, 30.0)),
                _telemetry(status="infeasible"),
                _telemetry(
                    values=(2.5, 5.0, 35.0),
                    members=[_telemetry(values=(4.0, 7.0, 20.0))],
                ),
            ],
        )
        assert sorted(_member_points(tree)) == [
            (2.0, 40.0),
            (2.5, 35.0),
            (3.0, 30.0),
            (4.0, 20.0),
        ]

    def test_losing_members_feed_the_merge(self):
        """A portfolio's losing member can contribute a front point the
        winner does not."""
        problem = np_hard_problem()
        solution = Solution(
            mapping=None,
            objective=40.0,
            values=CriteriaValues(
                periods={}, latencies={}, period=2.0, latency=5.0, energy=40.0
            ),
            solver="t",
        )
        job = JobRecord(
            id="j1", key="k1", priority=0, problem=problem, solver=None
        )
        job.resolve(
            JobOutcome(
                status="ok",
                solution=solution,
                telemetry=_telemetry(
                    values=(2.0, 5.0, 40.0),
                    members=[_telemetry(values=(9.0, 9.0, 7.0))],
                ),
            ),
            "solved",
        )
        record = FrontRecord(
            id="f1", problem=problem, thresholds=[2.0], jobs=[job]
        )
        record.refresh()
        assert record.finished
        assert record.merged.front() == pareto_filter(
            [(2.0, 40.0), (9.0, 7.0)]
        )

    def test_infeasible_and_cancelled_cells_counted(self):
        problem = np_hard_problem()
        infeasible = JobRecord(
            id="j1", key="k1", priority=0, problem=problem, solver=None
        )
        infeasible.resolve(JobOutcome(status="infeasible"), "solved")
        cancelled = JobRecord(
            id="j2", key="k2", priority=0, problem=problem, solver=None
        )
        cancelled.cancel()
        record = FrontRecord(
            id="f1",
            problem=problem,
            thresholds=[1.0, 2.0],
            jobs=[infeasible, cancelled],
        )
        record.refresh()
        assert record.finished
        assert record.n_infeasible == 1 and record.n_failed == 1
        assert record.to_dict()["front"] == []


class TestDaemonFronts:
    def test_front_matches_offline_exact_and_coalesces(self):
        problem = np_hard_problem(1)
        offline = period_energy_front_exact(problem, max_points=20)
        with ServerThread(
            port=0, concurrency=2, executor="thread"
        ) as server:
            client = SolveClient(server.url, timeout=60.0)
            view = client.submit_front(problem, points=20)
            assert view["total"] == len(view["jobs"]) > 0
            snapshots = list(client.iter_front(view["id"], timeout=120))
            final = snapshots[-1]
            assert final["state"] == "done"
            assert final["done"] == final["total"]
            hvs = [s["hypervolume"] for s in snapshots]
            assert hvs == sorted(hvs)
            assert [tuple(p) for p in final["front"]] == offline
            # Resubmission: every cell answered from cache, born done.
            again = client.submit_front(problem, points=20)
            assert again["state"] == "done"
            assert [tuple(p) for p in again["front"]] == offline
            # The embedded job ids resolve as ordinary jobs.
            job = client.job(final["jobs"][0])
            assert job["state"] == "done"

    def test_unknown_front_is_404(self):
        with ServerThread(
            port=0, concurrency=1, executor="thread"
        ) as server:
            client = SolveClient(server.url, retries=0)
            with pytest.raises(ClientError, match="404"):
                client.front("f999999-deadbeef")

    def test_strategy_template_front(self):
        problem = np_hard_problem(0)
        with ServerThread(
            port=0, concurrency=2, executor="thread"
        ) as server:
            client = SolveClient(server.url, timeout=60.0)
            view = client.submit_front(
                problem,
                strategy="portfolio(greedy,local_search)",
                budget={"max_evaluations": 2000, "seed": 0},
                points=8,
            )
            final = list(client.iter_front(view["id"], timeout=120))[-1]
            assert final["state"] == "done"
            # Heuristic fronts are still monotone non-dominated sets.
            front = [tuple(p) for p in final["front"]]
            assert front == pareto_filter(front)


class TestRouterFronts:
    def test_front_routes_and_matches_offline(self):
        problem = np_hard_problem(2)
        offline = period_energy_front_exact(problem, max_points=15)
        with ServerThread(
            port=0, concurrency=2, executor="thread"
        ) as s1, ServerThread(
            port=0, concurrency=2, executor="thread"
        ) as s2:
            with RouterThread(
                shards=[("a", s1.url), ("b", s2.url)]
            ) as router:
                client = SolveClient(router.url, timeout=60.0)
                view = client.submit_front(problem, points=15)
                assert "@" in view["id"]
                assert all("@" in j for j in view["jobs"])
                final = list(
                    client.iter_front(view["id"], timeout=120)
                )[-1]
                assert [tuple(p) for p in final["front"]] == offline
                # Cell jobs resolve through the router by suffix.
                assert client.job(final["jobs"][0])["state"] == "done"
                # Same problem routes to the same shard again.
                again = client.submit_front(problem, points=15)
                assert again["id"].split("@")[1] == view["id"].split("@")[1]

    def test_unsuffixed_front_id_is_404(self):
        with ServerThread(
            port=0, concurrency=1, executor="thread"
        ) as s1:
            with RouterThread(shards=[("a", s1.url)]) as router:
                client = SolveClient(router.url, retries=0)
                with pytest.raises(ClientError, match="404"):
                    client.front("f000001-deadbeef")
