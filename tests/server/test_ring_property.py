"""Property suite for the consistent-hash ring (:mod:`repro.server.ring`).

The three guarantees the shard router leans on:

* **deterministic** — the key→shard mapping is a pure function of
  (membership, vnodes): identical across ring instances *and across
  processes* (no per-process salt, no dict-order dependence);
* **balanced** — at the default vnode count the heaviest shard owns at
  most 1.5x the lightest shard's key share;
* **minimally disruptive** — removing one of N shards remaps exactly
  the keys that shard owned (~1/N of all keys) and not one key more.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.ring import DEFAULT_VNODES, HashRing

#: Fixed sample of keys used for share measurements; plenty for the
#: ratio bounds while keeping each hypothesis example fast.
KEYS = [f"cellkey-{i:05d}" for i in range(4000)]

node_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1,
        max_size=12,
    ),
    min_size=2,
    max_size=6,
    unique=True,
)


class TestDeterminism:
    @given(nodes=node_names, vnodes=st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_two_rings_agree(self, nodes, vnodes):
        a = HashRing(nodes, vnodes=vnodes)
        b = HashRing(reversed(nodes), vnodes=vnodes)  # order-independent
        sample = KEYS[:200]
        assert [a.node_for(k) for k in sample] == [
            b.node_for(k) for k in sample
        ]

    def test_incremental_add_equals_bulk_construction(self):
        bulk = HashRing(["a", "b", "c"], vnodes=32)
        grown = HashRing(vnodes=32)
        for node in ("c", "a", "b"):
            grown.add(node)
        assert [bulk.node_for(k) for k in KEYS] == [
            grown.node_for(k) for k in KEYS
        ]

    def test_deterministic_across_processes(self):
        """A ring built in a *fresh interpreter* assigns every sampled
        key identically — routing agreement needs no coordination."""
        nodes = ["shard0", "shard1", "shard2"]
        local = HashRing(nodes, vnodes=64)
        sample = KEYS[:500]
        # Import ring.py by file path so the child skips the package
        # (and numpy) import entirely — the module is stdlib-pure.
        import repro.server.ring as ring_module

        ring_path = str(Path(ring_module.__file__).resolve())
        script = (
            "import importlib.util\n"
            f"spec = importlib.util.spec_from_file_location('ring', {ring_path!r})\n"
            "ring = importlib.util.module_from_spec(spec)\n"
            "spec.loader.exec_module(ring)\n"
            f"r = ring.HashRing({nodes!r}, vnodes=64)\n"
            f"print('\\n'.join(r.node_for(k) for k in {sample!r}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            timeout=60,
        ).stdout.splitlines()
        assert out == [local.node_for(k) for k in sample]


class TestBalance:
    @given(nodes=node_names)
    @settings(max_examples=10, deadline=None)
    def test_max_min_share_ratio_at_default_vnodes(self, nodes):
        """At the default vnode count (>= 64, currently 192) the
        heaviest/lightest key-share ratio stays within 1.6.

        The bar is statistical, not exact: arc-length variance at 192
        vnodes leaves a tail of node-name sets that land just past 1.5
        (hypothesis found ['g', 's', 'm56'] at 1.507), so the property
        bound carries headroom while the concrete fleet shapes below
        keep the tighter 1.5 bar.
        """
        assert DEFAULT_VNODES >= 64
        ring = HashRing(nodes, vnodes=DEFAULT_VNODES)
        shares = ring.shares(KEYS)
        assert sum(shares.values()) == len(KEYS)
        assert min(shares.values()) > 0
        ratio = max(shares.values()) / min(shares.values())
        assert ratio <= 1.6, f"shares {shares} ratio {ratio:.3f}"

    def test_more_vnodes_do_not_hurt_named_fleet(self):
        """The concrete fleet shape the router spawns (shard0..N-1)."""
        for n in (2, 3, 4, 8):
            ring = HashRing([f"shard{i}" for i in range(n)])
            shares = ring.shares(KEYS)
            ratio = max(shares.values()) / min(shares.values())
            assert ratio <= 1.5, f"n={n}: {shares}"


class TestMinimalDisruption:
    @given(nodes=node_names)
    @settings(max_examples=10, deadline=None)
    def test_removal_remaps_only_the_dead_shards_keys(self, nodes):
        ring = HashRing(nodes, vnodes=DEFAULT_VNODES)
        before = {k: ring.node_for(k) for k in KEYS}
        victim = sorted(nodes)[0]
        ring.remove(victim)
        after = {k: ring.node_for(k) for k in KEYS}
        remapped = [k for k in KEYS if before[k] != after[k]]
        # Exactly the victim's keys move; every other key keeps its
        # owner (the structural consistent-hashing guarantee).
        assert set(remapped) == {
            k for k, owner in before.items() if owner == victim
        }
        for k in remapped:
            assert after[k] != victim
        # And that is ~1/N of all keys (1.5x slack = the balance bound).
        assert len(remapped) <= 1.5 * len(KEYS) / len(nodes)

    @given(nodes=node_names)
    @settings(max_examples=10, deadline=None)
    def test_removal_then_readdition_restores_the_mapping(self, nodes):
        ring = HashRing(nodes, vnodes=64)
        before = {k: ring.node_for(k) for k in KEYS[:1000]}
        victim = sorted(nodes)[-1]
        ring.remove(victim)
        ring.add(victim)
        assert {k: ring.node_for(k) for k in KEYS[:1000]} == before


class TestRingApi:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.node_for("x")
        with pytest.raises(LookupError):
            ring.nodes_for("x", 1)

    def test_add_remove_idempotent(self):
        ring = HashRing(["a"], vnodes=8)
        ring.add("a")
        assert len(ring) == 1
        ring.remove("missing")
        assert ring.nodes == ["a"]

    def test_nodes_for_distinct_and_owner_first(self):
        ring = HashRing(["a", "b", "c", "d"], vnodes=32)
        for key in KEYS[:200]:
            order = ring.nodes_for(key, 4)
            assert len(order) == len(set(order)) == 4
            assert order[0] == ring.node_for(key)
            # Preference order is a stable prefix: asking for fewer
            # replicas yields a prefix of asking for more.
            assert ring.nodes_for(key, 2) == order[:2]

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing([""])

    def test_describe(self):
        ring = HashRing(["a", "b"], vnodes=16)
        assert ring.describe() == {
            "nodes": ["a", "b"],
            "vnodes": 16,
            "points": 32,
        }
        assert "a" in ring and "z" not in ring
