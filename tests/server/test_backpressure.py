"""Backpressure semantics: the bounded queue, 429 shedding and the
client's ``Retry-After`` handling.

The guarantees under test, straight from the ISSUE's acceptance
criteria:

* a saturated queue sheds new work with the 429 response (service-level
  :class:`ServiceOverloadedError`, HTTP ``429`` + ``Retry-After``
  header) *before* a job record exists;
* coalescing and cache-hit submissions are admitted even at full depth;
* :class:`repro.client.SolveClient` honors ``Retry-After`` inside its
  existing backoff loop;
* no accepted job is ever dropped — everything that got a job record
  reaches a terminal state.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.client import ClientError, SolveClient
from repro.experiments.spec import SolverSpec
from repro.generators import small_random_problem
from repro.io import problem_to_dict
from repro.server import (
    JobState,
    ServerThread,
    ServiceOverloadedError,
    SolveService,
    solve_cell,
)

SPEC = SolverSpec(name="t")


def problem(seed=0):
    return small_random_problem(seed)


def _cell_factory():
    """Yields fresh (cell, outcome) pairs for driving ``_finish_cell``
    directly; ``wall_time`` controls the recorded solve duration."""
    from repro.server.jobs import JobOutcome
    from repro.server.service import _Cell

    counter = iter(range(10_000))

    def make(wall_time):
        n = next(counter)
        cell = _Cell(
            key=f"k{n}", problem=problem(n), solver=SPEC, priority=0, seq=n
        )
        outcome = JobOutcome(status="infeasible", wall_time=wall_time)
        return cell, outcome

    return make


_REAL_ITEM = solve_cell(problem(0), SPEC)


class GatedRunner:
    """Stub runner that blocks until released (saturates the queue)."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0

    def __call__(self, prob, solver):
        self.calls += 1
        assert self.gate.wait(30), "runner gate never opened"
        return _REAL_ITEM


def run(coro):
    return asyncio.run(coro)


class TestServiceShedding:
    def test_submission_beyond_depth_is_shed(self):
        async def scenario():
            runner = GatedRunner()
            service = SolveService(
                executor="thread",
                concurrency=1,
                max_queue_depth=2,
                runner=runner,
            )
            await service.start()
            # One runs, two queue; the fourth distinct submission must
            # be shed with a retry hint and without a job record.
            accepted = [service.submit(problem(0), SPEC)]
            await asyncio.sleep(0.05)  # let the worker pick up cell 0
            accepted += [service.submit(problem(seed), SPEC) for seed in (1, 2)]
            retained_before = len(service.jobs())
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.submit(problem(99), SPEC)
            assert excinfo.value.retry_after > 0
            assert len(service.jobs()) == retained_before, (
                "a shed submission must not leave a job record behind"
            )
            assert service.metrics()["queue"]["shed"] == 1
            runner.gate.set()
            await service.shutdown(drain_queue=True)
            return accepted

        accepted = run(scenario())
        assert all(j.state is JobState.DONE for j in accepted), (
            "every accepted job must reach a terminal state"
        )

    def test_coalesce_and_cache_hit_admitted_at_full_depth(self):
        async def scenario():
            runner = GatedRunner()
            service = SolveService(
                executor="thread",
                concurrency=1,
                max_queue_depth=1,
                runner=runner,
            )
            await service.start()
            first = service.submit(problem(0), SPEC)
            await asyncio.sleep(0.05)  # running now
            queued = service.submit(problem(1), SPEC)  # fills the queue
            with pytest.raises(ServiceOverloadedError):
                service.submit(problem(2), SPEC)
            # Coalescing onto the queued cell adds no queue work.
            coalesced = service.submit(problem(1), SPEC)
            assert coalesced.key == queued.key
            runner.gate.set()
            await service.shutdown(drain_queue=True)
            # Cache hit on a solved cell is admitted even when shut off
            # from the queue: re-check with a fresh, saturated service
            # sharing the same cache.
            jobs = [first, queued, coalesced]
            return jobs, service.cache

        jobs, cache = run(scenario())
        assert all(j.state is JobState.DONE for j in jobs)

        async def warm_scenario():
            runner = GatedRunner()
            service = SolveService(
                executor="thread",
                concurrency=1,
                max_queue_depth=1,
                cache=cache,
                runner=runner,
            )
            await service.start()
            service.submit(problem(10), SPEC)
            await asyncio.sleep(0.05)
            service.submit(problem(11), SPEC)  # queue full now
            hit = service.submit(problem(0), SPEC)  # solved in run #1
            assert hit.state is JobState.DONE
            assert hit.source == "cache"
            runner.gate.set()
            await service.shutdown(drain_queue=True)

        run(warm_scenario())

    def test_retry_after_scales_with_observed_solve_time(self):
        async def scenario():
            service = SolveService(
                executor="thread", concurrency=2, max_queue_depth=4
            )
            # No solves observed yet: the hint falls back to the 1s
            # assumption, scaled by depth/concurrency.
            assert service._retry_after_hint() > 0
            service._solve_time_recent = 5.0  # recent solves take ~5s
            hint = service._retry_after_hint()
            assert hint >= 2.0  # >= recent/concurrency with depth >= 1
            await service.shutdown()

        run(scenario())

    def test_retry_after_tracks_recent_solves_not_lifetime_mean(self):
        """Regression: the hint must follow the *current* workload.

        With a lifetime mean, one early batch of slow solves poisons the
        Retry-After estimate forever.  The EWMA forgets: after a run of
        fast solves the hint must be near the fast regime even though
        the lifetime mean is still dominated by the slow prefix.
        """

        async def scenario():
            service = SolveService(
                executor="thread", concurrency=1, max_queue_depth=4
            )
            make = _cell_factory()
            # Slow prefix: 10 solves at 60s each.
            for _ in range(10):
                cell, outcome = make(wall_time=60.0)
                service._running_cells += 1
                service._finish_cell(cell, outcome)
            # Fast regime: 30 solves at 0.1s each.
            for _ in range(30):
                cell, outcome = make(wall_time=0.1)
                service._running_cells += 1
                service._finish_cell(cell, outcome)
            lifetime_mean = (
                service._solve_time_total / service._counters["solved"]
            )
            assert lifetime_mean > 10.0  # slow prefix still dominates
            hint = service._retry_after_hint()
            assert hint < 1.0  # ...but the hint follows the fast regime
            await service.shutdown()

        run(scenario())


@pytest.fixture()
def saturated_server():
    """A live HTTP daemon with one gated in-flight cell and a full
    queue (depth 1), plus the runner handle to release it."""
    runner = GatedRunner()
    with ServerThread(
        executor="thread",
        concurrency=1,
        max_queue_depth=1,
        runner=runner,
    ) as server:
        client = SolveClient(server.url, timeout=10.0, retries=0)
        running_id = client.submit(problem(0))["id"]
        import time as _time

        for _ in range(200):  # wait until cell 0 is actually running
            if runner.calls:
                break
            _time.sleep(0.01)
        queued_id = client.submit(problem(1))["id"]
        yield server, runner, [running_id, queued_id]
        runner.gate.set()


def raw_post(server, payload):
    req = urllib.request.Request(
        f"{server.url}/v1/jobs",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(req, timeout=10)


class TestHttpShedding:
    def test_429_with_retry_after_header(self, saturated_server):
        server, _runner, _ids = saturated_server
        payload = {
            "problem": problem_to_dict(problem(2)),
            "solver": {"objective": "period"},
        }
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            raw_post(server, payload)
        exc = excinfo.value
        assert exc.code == 429
        assert float(exc.headers["Retry-After"]) >= 1
        body = json.loads(exc.read().decode())
        assert "queue is full" in body["error"]
        assert body["retry_after"] > 0

    def test_metrics_report_shed_and_depth(self, saturated_server):
        server, _runner, _ids = saturated_server
        client = SolveClient(server.url, retries=0)
        with pytest.raises(ClientError):
            client.submit(problem(3))
        metrics = client.metrics()
        assert metrics["queue"]["max_depth"] == 1
        assert metrics["queue"]["depth"] == 1
        assert metrics["queue"]["shed"] >= 1
        assert metrics["transport"] in ("auto", "shm", "pickle")

    def test_client_honors_retry_after_and_recovers(self, saturated_server):
        server, runner, accepted_ids = saturated_server
        slept = []

        client = SolveClient(server.url, timeout=10.0, retries=3, backoff=0.01)
        original_sleep = __import__("time").sleep

        def tracking_sleep(seconds):
            slept.append(seconds)
            # Free capacity while the client is honoring the hint, so
            # the retry lands on a drained queue.
            runner.gate.set()
            original_sleep(min(seconds, 0.2))

        import repro.client as client_module

        client_module.time.sleep, saved = tracking_sleep, client_module.time.sleep
        try:
            job_id = client.submit(problem(4))["id"]
        finally:
            client_module.time.sleep = saved
        assert slept, "the client must back off on 429"
        # The daemon's hint (>= 0.1s) overrides the 0.01s backoff.
        assert slept[0] >= 0.1
        # Every accepted job still completes: nothing was dropped.
        for accepted in accepted_ids + [job_id]:
            result = client.wait(accepted, timeout=30)
            assert result.status == "ok"

    def test_no_accepted_job_dropped_under_load(self, saturated_server):
        server, runner, accepted_ids = saturated_server
        client = SolveClient(server.url, timeout=10.0, retries=0)
        shed = 0
        for seed in range(5, 10):
            try:
                accepted_ids.append(client.submit(problem(seed))["id"])
            except ClientError:
                shed += 1
        assert shed > 0, "the saturation fixture must shed something"
        runner.gate.set()
        for job_id in accepted_ids:
            result = client.wait(job_id, timeout=30)
            assert result.status == "ok"
        metrics = client.metrics()
        assert metrics["jobs"]["completed"] >= len(accepted_ids)
        assert metrics["jobs"]["shed"] == shed
