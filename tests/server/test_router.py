"""The shard router (:mod:`repro.server.router`) against live daemons.

Routing by cell key, cross-daemon dedup, health mark-down/mark-up,
bounded retry-to-next-replica on connect failure and 429, stateless job
affinity through ``@shard`` id suffixes, fleet metrics aggregation, and
the ``redirect_results`` mode (including its fall-back to proxying when
the owning shard is down).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.client import ClientError, SolveClient
from repro.experiments import cell_key_for_payload
from repro.experiments.spec import SolverSpec
from repro.generators import small_random_problem
from repro.io import problem_to_dict
from repro.server import (
    DEFAULT_VNODES,
    HashRing,
    RouterThread,
    ServerThread,
    ShardRouter,
    parse_shard_spec,
    routed_job_id,
    solve_cell,
    split_job_id,
)

SPEC = SolverSpec(name="t")
SOLVER = {"objective": "period"}


def problem(seed=0):
    return small_random_problem(seed)


def key_of(prob):
    return cell_key_for_payload(problem_to_dict(prob), SOLVER)


def seed_owned_by(nodes, target, *, vnodes=DEFAULT_VNODES, start=0):
    """First seed >= start whose cell key the ring assigns to `target`."""
    ring = HashRing(nodes, vnodes=vnodes)
    for seed in range(start, start + 300):
        if ring.node_for(key_of(problem(seed))) == target:
            return seed
    raise AssertionError(f"no seed in [{start}, {start + 300}) owned by {target}")


_REAL_ITEM = solve_cell(problem(0), SPEC)


class GatedRunner:
    """Stub runner that blocks until released (saturates a queue)."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0

    def __call__(self, prob, solver):
        self.calls += 1
        assert self.gate.wait(30), "runner gate never opened"
        return _REAL_ITEM


def raw_request(url, method="GET", payload=None):
    """One request with urllib's redirect following disabled."""

    class _NoRedirect(urllib.request.HTTPRedirectHandler):
        def redirect_request(self, *args, **kwargs):
            return None

    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.build_opener(_NoRedirect).open(request, timeout=10)


class TestIdHelpers:
    def test_routed_and_split_round_trip(self):
        routed = routed_job_id("j000001-ab12cd34", "shard1")
        assert routed == "j000001-ab12cd34@shard1"
        assert split_job_id(routed) == ("j000001-ab12cd34", "shard1")

    def test_split_without_suffix(self):
        assert split_job_id("j000001-ab12cd34") == ("j000001-ab12cd34", None)

    def test_parse_shard_spec(self):
        assert parse_shard_spec("http://127.0.0.1:8787/") == (
            "127.0.0.1:8787", "http://127.0.0.1:8787",
        )
        assert parse_shard_spec("west=https://10.0.0.2:9000") == (
            "west", "https://10.0.0.2:9000",
        )
        for bad in ("ftp://x:1", "not-a-url", "name=", "name=ws://x"):
            with pytest.raises(ValueError, match="shard spec"):
                parse_shard_spec(bad)


class TestRouterValidation:
    def test_no_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardRouter([
                ("a", "http://127.0.0.1:1"), ("a", "http://127.0.0.1:2"),
            ])

    def test_router_thread_surfaces_startup_error(self):
        with pytest.raises(RuntimeError, match="failed to start"):
            RouterThread([]).start()


@pytest.fixture(scope="module")
def fleet():
    """Two live daemons fronted by a router."""
    with ServerThread(executor="thread", concurrency=2) as s0:
        with ServerThread(executor="thread", concurrency=2) as s1:
            shards = [("shard0", s0.url), ("shard1", s1.url)]
            with RouterThread(shards, health_interval=0.2) as rt:
                yield rt, {"shard0": s0, "shard1": s1}


@pytest.fixture()
def client(fleet):
    rt, _servers = fleet
    return SolveClient(rt.url, timeout=10.0)


class TestRoutedFleet:
    def test_healthz_reports_fleet(self, fleet, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["shards_up"] == health["shards_total"] == 2
        assert {s["name"] for s in health["shards"]} == {"shard0", "shard1"}

    def test_submission_lands_on_ring_owner(self, fleet, client):
        rt, _servers = fleet
        for seed in (300, 301, 302, 303):
            prob = problem(seed)
            view = client.submit(prob)
            _raw, shard = split_job_id(view["id"])
            owner = rt.run_sync(
                lambda r, k=key_of(prob): _return(r.owner_for(k).name)
            )
            assert shard == owner
            assert view["shard"] == owner

    def test_both_shards_get_work(self, fleet, client):
        seeds = [
            seed_owned_by(["shard0", "shard1"], "shard0", start=320),
            seed_owned_by(["shard0", "shard1"], "shard1", start=320),
        ]
        shards = set()
        for seed in seeds:
            view = client.submit(problem(seed))
            shards.add(split_job_id(view["id"])[1])
        assert shards == {"shard0", "shard1"}

    def test_wait_and_result_through_routed_id(self, client):
        result = client.solve(problem(310), timeout=60)
        assert result.ok
        assert "@shard" in result.job_id
        assert result.solution.objective > 0

    def test_duplicate_submission_dedups_fleet_wide(self, client):
        prob = problem(311)
        first = client.solve(prob, timeout=60)
        second = client.solve(prob, timeout=60)
        # Same key -> same shard -> the daemon's cache answers.
        assert split_job_id(first.job_id)[1] == split_job_id(second.job_id)[1]
        assert second.source == "cache"
        assert second.solution.objective == first.solution.objective

    def test_jobs_listing_merges_shards(self, fleet, client):
        client.solve(problem(312), timeout=60)
        jobs = client.jobs()
        assert jobs
        suffixes = {split_job_id(j["id"])[1] for j in jobs}
        assert suffixes <= {"shard0", "shard1"}
        assert all("shard" in j for j in jobs)

    def test_metrics_aggregate_fleet(self, fleet, client):
        client.solve(problem(313), timeout=60)
        metrics = client.metrics()
        assert metrics["role"] == "router"
        assert metrics["router"]["submitted"] >= 1
        assert metrics["ring"]["nodes"] == ["shard0", "shard1"]
        assert metrics["ring"]["vnodes"] == DEFAULT_VNODES
        per_shard = metrics["shards"]
        assert set(per_shard) == {"shard0", "shard1"}
        summed = sum(
            shard["jobs"]["submitted"] for shard in per_shard.values()
        )
        assert metrics["fleet"]["jobs"]["submitted"] == summed
        assert metrics["fleet"]["jobs"]["completed"] >= 1
        assert {s["name"] for s in metrics["shard_health"]} == {
            "shard0", "shard1",
        }

    def test_cli_jobs_metrics_renders_router_payload(self, fleet, capsys):
        # `repro-pipelines jobs --metrics` against the ROUTER: the
        # payload has fleet/shard_health sections instead of a single
        # queue, and the CLI must render it rather than KeyError.
        from repro.cli import main

        rt, _servers = fleet
        assert main(["jobs", "--url", rt.url, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "router: shards_up=2/2" in out
        assert "shard0" in out and "shard1" in out
        assert "solver: evaluations=" in out

    def test_unsuffixed_job_id_is_404(self, client):
        with pytest.raises(ClientError, match="no shard suffix"):
            client.job("j000001-deadbeef")

    def test_unknown_shard_suffix_is_404(self, client):
        with pytest.raises(ClientError, match="unknown shard"):
            client.job("j000001-deadbeef@nope")

    def test_unknown_job_on_real_shard_passes_through(self, client):
        with pytest.raises(ClientError, match="unknown job"):
            client.job("j999999-deadbeef@shard0")

    def test_invalid_json_body_is_400(self, fleet):
        rt, _servers = fleet
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            request = urllib.request.Request(
                f"{rt.url}/v1/jobs", data=b"{nope", method="POST",
                headers={"Content-Type": "application/json"},
            )
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_protocol_error_is_400(self, fleet):
        rt, _servers = fleet
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            raw_request(f"{rt.url}/v1/jobs", "POST", {"problem": {}})
        assert excinfo.value.code == 400

    def test_validation_error_passes_through_from_shard(self, client):
        with pytest.raises(ClientError, match="objective"):
            client.submit(problem(314), objective="bogus")

    def test_unknown_path_is_404_and_bad_method_is_405(self, fleet):
        rt, _servers = fleet
        for path in ("/v1/nope", "/nope", "/v1/jobs/a/b/c"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                raw_request(f"{rt.url}{path}")
            assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            raw_request(f"{rt.url}/v1/healthz", "DELETE")
        assert excinfo.value.code == 405

    def test_half_closed_connection_is_tolerated(self, fleet, client):
        import socket
        from urllib.parse import urlsplit

        rt, _servers = fleet
        parts = urlsplit(rt.url)
        with socket.create_connection(
            (parts.hostname, parts.port), timeout=5
        ) as sock:
            sock.sendall(b"GET /v1/healthz HTT")  # partial request line
        # The router must survive the aborted request and keep serving.
        assert client.healthz()["shards_total"] == 2

    def test_cancel_routes_to_owning_shard(self, client):
        view = client.submit(problem(315))
        # The job may already be done (tiny instance); either way the
        # DELETE must reach the owning shard and answer coherently.
        assert client.cancel(view["id"]) in (True, False)


def _return(value):
    async def _coro():
        return value
    return _coro()


class TestConnectFailover:
    @pytest.fixture()
    def half_dead_fleet(self):
        """One live daemon plus one shard URL nothing listens on."""
        with ServerThread(executor="thread", concurrency=2) as live:
            shards = [("dead", "http://127.0.0.1:9"), ("live", live.url)]
            with RouterThread(
                shards, health_interval=30.0, fail_threshold=2,
                upstream_timeout=5.0,
            ) as rt:
                yield rt, live

    def test_submit_retries_to_next_replica(self, half_dead_fleet):
        rt, _live = half_dead_fleet
        client = SolveClient(rt.url, timeout=10.0, retries=0)
        seed = seed_owned_by(["dead", "live"], "dead", start=400)
        result = client.solve(problem(seed), timeout=60)
        assert result.ok
        assert split_job_id(result.job_id)[1] == "live"
        metrics = client.metrics()
        assert metrics["router"]["retries"] >= 1
        assert metrics["router"]["markdowns"] >= 1
        dead = next(
            s for s in metrics["shard_health"] if s["name"] == "dead"
        )
        assert dead["up"] is False
        assert dead["last_error"]
        # Fleet is degraded but serving.
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["shards_up"] == 1

    def test_marked_down_shard_is_skipped_entirely(self, half_dead_fleet):
        rt, _live = half_dead_fleet
        client = SolveClient(rt.url, timeout=10.0, retries=0)
        rt.run_sync(lambda r: r.check_health())  # two sweeps cross the
        rt.run_sync(lambda r: r.check_health())  # fail threshold: down
        seed = seed_owned_by(["dead", "live"], "dead", start=420)
        candidates = rt.run_sync(
            lambda r: _return([s.name for s in
                               r.candidates_for(key_of(problem(seed)))])
        )
        assert candidates == ["live"]
        result = client.solve(problem(seed), timeout=60)
        assert split_job_id(result.job_id)[1] == "live"

    def test_job_on_unreachable_shard_is_503(self, half_dead_fleet):
        rt, _live = half_dead_fleet
        client = SolveClient(rt.url, timeout=10.0, retries=0)
        with pytest.raises(ClientError, match="unreachable"):
            client.job("j000001-deadbeef@dead")

    def test_jobs_listing_reports_unavailable_shard(self, half_dead_fleet):
        rt, _live = half_dead_fleet
        client = SolveClient(rt.url, timeout=10.0, retries=0)
        # A key owned by "live" keeps the submission away from "dead",
        # so "dead" is still nominally up when the fan-out runs: the
        # merged listing must flag it rather than silently omit it.
        seed = seed_owned_by(["dead", "live"], "live", start=450)
        client.solve(problem(seed), timeout=60)
        with raw_request(f"{rt.url}/v1/jobs") as resp:
            payload = json.loads(resp.read().decode())
        assert payload["count"] >= 1
        assert payload["unavailable_shards"] == ["dead"]

    def test_metrics_report_unreachable_shard(self, half_dead_fleet):
        rt, _live = half_dead_fleet
        metrics = SolveClient(rt.url, retries=0).metrics()
        assert "error" in metrics["shards"]["dead"]
        assert "jobs" in metrics["shards"]["live"]

    def test_all_shards_unreachable_is_503(self):
        shards = [
            ("a", "http://127.0.0.1:9"), ("b", "http://127.0.0.1:10"),
        ]
        with RouterThread(
            shards, health_interval=30.0, upstream_timeout=2.0
        ) as rt:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                raw_request(f"{rt.url}/v1/jobs", "POST", {
                    "problem": problem_to_dict(problem(460)),
                    "solver": SOLVER,
                })
            exc = excinfo.value
            assert exc.code == 503
            body = json.loads(exc.read().decode())
            assert "no shard reachable" in body["error"]
            assert set(body["tried"]) == {"a", "b"}
            metrics_payload = SolveClient(rt.url, retries=0).metrics()
            assert metrics_payload["router"]["unroutable"] == 1

    def test_health_sweep_marks_up_and_down(self, half_dead_fleet):
        rt, _live = half_dead_fleet
        rt.run_sync(lambda r: r.check_health())
        rt.run_sync(lambda r: r.check_health())
        states = rt.run_sync(
            lambda r: _return({n: s.up for n, s in r.shards.items()})
        )
        assert states == {"dead": False, "live": True}
        # A marked-down shard that answers again comes back up on the
        # first successful probe.
        rt.run_sync(lambda r: _return(
            r.shards["dead"].__setattr__("url", r.shards["live"].url)
        ))
        rt.run_sync(lambda r: r.check_health())
        states = rt.run_sync(
            lambda r: _return({n: s.up for n, s in r.shards.items()})
        )
        assert states == {"dead": True, "live": True}
        metrics = SolveClient(rt.url, retries=0).metrics()
        assert metrics["router"]["markups"] >= 1


class TestMisbehavingShard:
    """A shard that *answers* but answers wrong (e.g. a non-daemon
    service on the configured URL): HTTP errors are not transport
    errors — health marks it down, submissions pass the status through.
    """

    @pytest.fixture()
    def weird_fleet(self):
        with ServerThread(executor="thread", concurrency=2) as live:
            # Base URL nested one level deep: every /v1/* path 404s.
            shards = [("weird", f"{live.url}/extra")]
            with RouterThread(shards, health_interval=30.0) as rt:
                yield rt

    def test_bad_healthz_status_marks_down(self, weird_fleet):
        rt = weird_fleet
        rt.run_sync(lambda r: r.check_health())
        rt.run_sync(lambda r: r.check_health())
        shard = rt.run_sync(
            lambda r: _return(r.shards["weird"].describe())
        )
        assert shard["up"] is False
        assert "HTTP 404" in shard["last_error"]

    def test_non_429_error_status_passes_through(self, weird_fleet):
        rt = weird_fleet
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            raw_request(f"{rt.url}/v1/jobs", "POST", {
                "problem": problem_to_dict(problem(470)),
                "solver": SOLVER,
            })
        assert excinfo.value.code == 404  # the shard's own verdict

    def test_internal_error_is_a_clean_500(self, weird_fleet):
        rt = weird_fleet

        def _sabotage(router):
            async def _boom():
                raise RuntimeError("boom")
            router._metrics = _boom
            return _return(None)

        rt.run_sync(_sabotage)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            raw_request(f"{rt.url}/v1/metrics")
        exc = excinfo.value
        assert exc.code == 500
        assert "RuntimeError: boom" in json.loads(exc.read().decode())["error"]


class TestSpawnLocalFleet:
    def test_spawn_front_solve_terminate(self, tmp_path):
        from repro.server import spawn_local_fleet
        from repro.server.router import terminate_fleet

        shards = spawn_local_fleet(
            1, cache_dir=tmp_path, executor="thread", concurrency=1
        )
        try:
            assert shards[0].name == "shard0"
            assert (tmp_path / "shard0").is_dir()
            with RouterThread(
                [(s.name, s.url) for s in shards], health_interval=30.0
            ) as rt:
                result = SolveClient(rt.url, timeout=30.0).solve(
                    problem(480), timeout=120
                )
                assert result.ok
                assert split_job_id(result.job_id)[1] == "shard0"
        finally:
            terminate_fleet(shards)
        assert shards[0].process.poll() is not None

    def test_spawn_failure_cleans_up_and_raises(self, tmp_path):
        from repro.server import spawn_local_fleet

        with pytest.raises(RuntimeError, match="did not announce"):
            spawn_local_fleet(
                1,
                cache_dir=tmp_path,
                executor="thread",
                extra_args=["--definitely-not-a-flag"],
                startup_timeout=30.0,
            )


class TestSheddingFailover:
    @pytest.fixture()
    def gated_shard(self):
        """A daemon with one gated in-flight cell and a full queue."""
        runner = GatedRunner()
        with ServerThread(
            executor="thread", concurrency=1, max_queue_depth=1,
            runner=runner,
        ) as server:
            direct = SolveClient(server.url, timeout=10.0, retries=0)
            accepted = [direct.submit(problem(500))["id"]]
            import time as _time
            for _ in range(200):
                if runner.calls:
                    break
                _time.sleep(0.01)
            accepted.append(direct.submit(problem(501))["id"])
            yield server, runner, accepted
            runner.gate.set()

    def test_429_retries_to_next_replica(self, gated_shard):
        server, _runner, _accepted = gated_shard
        with ServerThread(executor="thread", concurrency=2) as spare:
            shards = [("a", server.url), ("b", spare.url)]
            with RouterThread(shards, health_interval=30.0) as rt:
                client = SolveClient(rt.url, timeout=10.0, retries=0)
                seed = seed_owned_by(["a", "b"], "a", start=510)
                result = client.solve(problem(seed), timeout=60)
                assert result.ok
                assert split_job_id(result.job_id)[1] == "b"
                metrics = client.metrics()
                assert metrics["router"]["retries"] >= 1
                # Shedding is not a health failure: "a" stays up.
                assert all(s["up"] for s in metrics["shard_health"])

    def test_last_429_is_relayed_when_all_shed(self, gated_shard):
        server, _runner, _accepted = gated_shard
        with RouterThread(
            [("a", server.url)], health_interval=30.0
        ) as rt:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                raw_request(f"{rt.url}/v1/jobs", "POST", {
                    "problem": problem_to_dict(problem(520)),
                    "solver": SOLVER,
                })
            exc = excinfo.value
            assert exc.code == 429
            assert float(exc.headers["Retry-After"]) > 0
            body = json.loads(exc.read().decode())
            assert body["tried"] == ["a"]
            assert body["retry_after"] > 0
            metrics = SolveClient(rt.url, retries=0).metrics()
            assert metrics["router"]["relayed_429"] == 1

    def test_accepted_jobs_survive_the_shedding(self, gated_shard):
        server, runner, accepted = gated_shard
        runner.gate.set()
        direct = SolveClient(server.url, timeout=10.0)
        for job_id in accepted:
            assert direct.wait(job_id, timeout=30).status == "ok"


class TestRedirectResults:
    @pytest.fixture()
    def redirect_fleet(self):
        with ServerThread(executor="thread", concurrency=2) as s0:
            with ServerThread(executor="thread", concurrency=2) as s1:
                shards = [("shard0", s0.url), ("shard1", s1.url)]
                with RouterThread(
                    shards, health_interval=30.0, redirect_results=True
                ) as rt:
                    yield rt

    def test_client_follows_307_to_owning_shard(self, redirect_fleet):
        rt = redirect_fleet
        client = SolveClient(rt.url, timeout=10.0)
        result = client.solve(problem(600), timeout=60)
        assert result.ok
        assert result.solution.objective > 0

    def test_raw_fetch_sees_the_redirect(self, redirect_fleet):
        rt = redirect_fleet
        client = SolveClient(rt.url, timeout=10.0)
        routed_id = client.submit(problem(601))["id"]
        client.wait(routed_id, timeout=60)
        raw, _shard = split_job_id(routed_id)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            raw_request(f"{rt.url}/v1/jobs/{routed_id}/result")
        exc = excinfo.value
        assert exc.code == 307
        assert exc.headers["Location"].endswith(f"/v1/jobs/{raw}/result")

    def test_down_shard_falls_back_to_proxying(self, redirect_fleet):
        rt = redirect_fleet
        client = SolveClient(rt.url, timeout=10.0)
        routed_id = client.submit(problem(602))["id"]
        result = client.wait(routed_id, timeout=60)
        assert result.ok
        _raw, shard = split_job_id(routed_id)

        def _set_up(value):
            def _apply(router):
                router.shards[shard].up = value
                return _return(None)
            return _apply

        rt.run_sync(_set_up(False))
        try:
            # The shard is *marked* down (health state) but still
            # answering: the router must proxy the payload itself
            # rather than bounce the client into a dead redirect.
            with raw_request(
                f"{rt.url}/v1/jobs/{routed_id}/result"
            ) as resp:
                assert resp.status == 200
                payload = json.loads(resp.read().decode())
            assert payload["id"] == routed_id
            assert payload["status"] == "ok"
        finally:
            rt.run_sync(_set_up(True))
