"""HTTP API of the daemon (:mod:`repro.server.http`).

One live in-process server per test class (``ServerThread`` with a
thread executor), driven with raw ``urllib`` so the routes — not the
client — are under test.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.generators import small_random_problem
from repro.io import problem_to_dict
from repro.server import ServerThread


@pytest.fixture(scope="module")
def server():
    with ServerThread(executor="thread", concurrency=2) as handle:
        yield handle


def request(server, method, path, payload=None):
    """Raw HTTP helper returning (status, decoded-JSON body)."""
    body = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        f"{server.url}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def submission(seed=0, **solver):
    return {
        "problem": problem_to_dict(small_random_problem(seed)),
        "solver": solver or {"objective": "period"},
    }


def wait_done(server, job_id, tries=400):
    import time

    for _ in range(tries):
        status, view = request(server, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if view["state"] in ("done", "cancelled"):
            return view
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never finished")


class TestHealthAndMetrics:
    def test_healthz_reports_version(self, server):
        status, payload = request(server, "GET", "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        # The version is single-sourced from the package metadata.
        assert payload["version"] == __version__
        assert payload["uptime_s"] >= 0

    def test_metrics_shape(self, server):
        status, payload = request(server, "GET", "/v1/metrics")
        assert status == 200
        assert set(payload["queue"]) == {
            "depth",
            "running",
            "concurrency",
            "max_depth",
            "shed",
        }
        assert payload["queue"]["max_depth"] is None  # unbounded default
        assert payload["transport"] in ("auto", "shm", "pickle")
        assert "submitted" in payload["jobs"]
        assert "shed" in payload["jobs"]
        assert "evaluations" in payload["solver"]


class TestSubmitAndFetch:
    def test_submit_poll_result_round_trip(self, server):
        status, view = request(server, "POST", "/v1/jobs", submission(100))
        assert status in (200, 202)
        assert view["state"] in ("queued", "running", "done")
        done = wait_done(server, view["id"])
        assert done["status"] == "ok"
        assert done["objective"] > 0
        assert done["telemetry"] is not None
        status, result = request(
            server, "GET", f"/v1/jobs/{view['id']}/result"
        )
        assert status == 200
        assert result["status"] == "ok"
        assert result["solution"]["objective"] == done["objective"]
        assert result["solution"]["mapping"]["assignments"]

    def test_duplicate_submission_is_deduplicated(self, server):
        first = request(server, "POST", "/v1/jobs", submission(101))[1]
        wait_done(server, first["id"])
        status, dup = request(server, "POST", "/v1/jobs", submission(101))
        # Cache hits answer with 200 and a born-done job.
        assert status == 200
        assert dup["state"] == "done"
        assert dup["source"] == "cache"
        assert dup["key"] == first["key"]

    def test_result_conflict_while_pending(self, server):
        # An unsolvable-fast strategy is unnecessary: submit and query
        # the result immediately; if the job already finished, the 200
        # path is covered elsewhere.
        view = request(server, "POST", "/v1/jobs", submission(102))[1]
        status, payload = request(
            server, "GET", f"/v1/jobs/{view['id']}/result"
        )
        assert status in (200, 409)
        if status == 409:
            assert "not finished" in payload["error"]
        wait_done(server, view["id"])

    def test_jobs_listing_and_state_filter(self, server):
        view = request(server, "POST", "/v1/jobs", submission(103))[1]
        wait_done(server, view["id"])
        status, listing = request(server, "GET", "/v1/jobs?state=done&limit=5")
        assert status == 200
        assert 0 < listing["count"] <= 5
        assert all(j["state"] == "done" for j in listing["jobs"])
        assert any(j["id"] == view["id"] for j in listing["jobs"])

    def test_cancel_endpoint(self, server):
        view = request(server, "POST", "/v1/jobs", submission(104))[1]
        status, payload = request(
            server, "DELETE", f"/v1/jobs/{view['id']}"
        )
        assert status == 200
        # Whether cancellation won the race depends on the queue; the
        # contract is the bool plus a consistent final state.
        if payload["cancelled"]:
            assert payload["state"] == "cancelled"
        else:
            assert payload["state"] in ("running", "done")


class TestValidation:
    def test_unknown_path_404(self, server):
        assert request(server, "GET", "/v1/nope")[0] == 404
        assert request(server, "GET", "/nope")[0] == 404

    def test_unknown_job_404(self, server):
        assert request(server, "GET", "/v1/jobs/jxxx")[0] == 404
        assert request(server, "GET", "/v1/jobs/jxxx/result")[0] == 404
        assert request(server, "DELETE", "/v1/jobs/jxxx")[0] == 404

    def test_wrong_method_405(self, server):
        assert request(server, "DELETE", "/v1/healthz")[0] == 405
        assert request(server, "POST", "/v1/metrics", {})[0] == 405

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/v1/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_missing_problem_400(self, server):
        status, payload = request(server, "POST", "/v1/jobs", {"solver": {}})
        assert status == 400
        assert "problem" in payload["error"]

    def test_bad_solver_named_in_error(self, server):
        status, payload = request(
            server,
            "POST",
            "/v1/jobs",
            submission(105, objective="bogus"),
        )
        assert status == 400
        assert "objective" in payload["error"]
        status, payload = request(
            server,
            "POST",
            "/v1/jobs",
            submission(105, strategy="not-a-strategy"),
        )
        assert status == 400
        assert "strategy" in payload["error"]

    def test_energy_requires_max_period(self, server):
        status, payload = request(
            server, "POST", "/v1/jobs", submission(106, objective="energy")
        )
        assert status == 400
        assert "max_period" in payload["error"]

    def test_bad_state_filter_400(self, server):
        assert request(server, "GET", "/v1/jobs?state=bogus")[0] == 400
        assert request(server, "GET", "/v1/jobs?limit=bogus")[0] == 400

    def test_bad_priority_400(self, server):
        payload = submission(107)
        payload["priority"] = "high"
        assert request(server, "POST", "/v1/jobs", payload)[0] == 400

    def test_unknown_top_level_key_400(self, server):
        payload = submission(108)
        payload["bogus"] = 1
        status, body = request(server, "POST", "/v1/jobs", payload)
        assert status == 400
        assert "bogus" in body["error"]


class TestStrategySubmissions:
    def test_strategy_with_budget_over_http(self, server):
        status, view = request(
            server,
            "POST",
            "/v1/jobs",
            {
                "problem": problem_to_dict(small_random_problem(109)),
                "solver": {
                    "objective": "period",
                    "strategy": "greedy",
                    "budget": {"max_evaluations": 50000, "seed": 0},
                },
            },
        )
        assert status in (200, 202)
        done = wait_done(server, view["id"])
        assert done["status"] == "ok"
        assert done["telemetry"]["strategy"] == "greedy"
        assert done["telemetry"]["evaluations"] > 0
